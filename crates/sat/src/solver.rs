//! The CDCL solver.

use std::sync::Arc;

use crate::clause::{ClauseDb, ClauseRef, ClauseStats};
use crate::drat::ProofStep;
use crate::lit::{LBool, Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with
    /// [`Solver::value`] / [`Solver::model`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    /// If assumptions were used, [`Solver::unsat_core`] names a subset of
    /// them responsible for the conflict.
    Unsat,
}

/// Tuning knobs for the solver.
///
/// The defaults follow MiniSat-era folklore and are adequate for every
/// workload in this repository; they are exposed so the benchmark harness
/// can ablate restart and reduction policies.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities per conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities per conflict.
    pub clause_decay: f64,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Initial learnt-clause limit as a fraction of problem clauses.
    pub learnt_size_factor: f64,
    /// Growth applied to the learnt-clause limit at each reduction.
    pub learnt_size_inc: f64,
    /// Disable restarts entirely (ablation).
    pub disable_restarts: bool,
    /// Disable learnt-clause minimisation (ablation).
    pub disable_minimisation: bool,
    /// Chronological backtracking: when conflict analysis asks to jump
    /// more than [`SolverConfig::chrono_threshold`] levels back, retreat a
    /// single level instead and assert the learnt clause there, keeping
    /// the (still consistent) lower trail intact.
    pub chrono_backtrack: bool,
    /// Jump distance above which chronological backtracking engages.
    pub chrono_threshold: u32,
    /// Clause vivification between restarts: re-derive recent learnt
    /// clauses by propagating their negated literals one at a time,
    /// shortening any clause whose suffix turns out redundant.
    pub vivify: bool,
    /// Bounded subsumption / self-subsuming resolution between restarts
    /// over a window of short learnt clauses.
    pub subsume: bool,
    /// Stabilizing restarts: alternate a *focused* phase (Luby intervals
    /// at [`SolverConfig::restart_base`]) with a *stable* phase (10× longer
    /// intervals), doubling the phase length each switch, in the style of
    /// glucose/CaDiCaL mode alternation.
    pub stable_restarts: bool,
    /// Conflict interval between in-solve [`ProgressSink`] heartbeats.
    /// Purely observational — a heartbeat never feeds back into the
    /// search — and event-count-based, so the emission *points* are
    /// deterministic for a given formula regardless of wall clock.
    /// `0` disables heartbeats even when a sink is installed.
    pub heartbeat_every: u64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            learnt_size_factor: 1.0 / 3.0,
            learnt_size_inc: 1.1,
            disable_restarts: false,
            disable_minimisation: false,
            chrono_backtrack: true,
            chrono_threshold: 100,
            vivify: true,
            subsume: true,
            stable_restarts: true,
            heartbeat_every: 1024,
        }
    }
}

/// One in-solve progress snapshot, emitted through a [`ProgressSink`]
/// every [`SolverConfig::heartbeat_every`] conflicts.
///
/// All fields are cumulative solver totals (not deltas), so a sink can
/// compute rates by differencing consecutive beats against its own
/// clock. The solver deliberately reads no clock itself: given the same
/// formula and assumptions, the *sequence* of heartbeats is identical
/// run to run, which is what makes progress telemetry testable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// `solve` calls so far (identifies which solve this beat belongs to).
    pub solves: u64,
    /// Conflicts analysed so far.
    pub conflicts: u64,
    /// Current assignment-trail depth.
    pub trail_depth: u64,
    /// Restarts performed so far.
    pub restarts: u64,
    /// Current learnt-clause database size.
    pub learnt: u64,
    /// DRAT proof steps emitted so far (0 unless proof recording is on).
    pub proof_steps: u64,
}

/// Receiver of in-solve [`Heartbeat`]s.
///
/// Installed with [`Solver::set_progress`]; shared (`Arc`) so the
/// producer (the solver, deep in its search loop) and consumers (a CLI
/// progress line, a daemon per-request status table) can observe the
/// same sink concurrently. Implementations must be cheap and must not
/// panic — they run on the solver's hot path.
pub trait ProgressSink: Send + Sync {
    /// Called every [`SolverConfig::heartbeat_every`] conflicts.
    fn heartbeat(&self, beat: &Heartbeat);
}

/// Wrapper giving the trait object a `Debug` so `Solver` keeps deriving.
#[derive(Clone)]
struct ProgressHook(Arc<dyn ProgressSink>);

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressSink")
    }
}

/// Counters describing the work a solver has done.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Number of `solve` calls.
    pub solves: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt-database reductions performed.
    pub reductions: u64,
    /// Literals deleted by conflict-clause minimisation.
    pub minimised_lits: u64,
    /// Conflicts resolved by a one-level chronological backtrack instead
    /// of a long non-chronological jump.
    pub chrono_backtracks: u64,
    /// Learnt clauses shortened or removed by vivification.
    pub vivified: u64,
    /// Learnt clauses deleted because another learnt clause subsumes them.
    pub subsumed: u64,
    /// Learnt clauses strengthened by self-subsuming resolution.
    pub strengthened: u64,
    /// DRAT proof steps emitted (0 unless [`Solver::enable_proof`]).
    pub proof_steps: u64,
    /// Live clause counts.
    pub clauses: ClauseStats,
}

impl SolverStats {
    /// Accumulates counters from another solver instance (clause counts
    /// sum too: across distinct solvers "live clauses" is additive).
    pub fn merge(&mut self, other: &SolverStats) {
        self.solves += other.solves;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.reductions += other.reductions;
        self.minimised_lits += other.minimised_lits;
        self.chrono_backtracks += other.chrono_backtracks;
        self.vivified += other.vivified;
        self.subsumed += other.subsumed;
        self.strengthened += other.strengthened;
        self.proof_steps += other.proof_steps;
        self.clauses.problem += other.clauses.problem;
        self.clauses.learnt += other.clauses.learnt;
    }

    /// The work done between an `earlier` snapshot of the same solver
    /// and this one. Monotonic counters subtract exactly; live clause
    /// counts can shrink (database reduction), so they saturate at 0.
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves - earlier.solves,
            decisions: self.decisions - earlier.decisions,
            propagations: self.propagations - earlier.propagations,
            conflicts: self.conflicts - earlier.conflicts,
            restarts: self.restarts - earlier.restarts,
            reductions: self.reductions - earlier.reductions,
            minimised_lits: self.minimised_lits - earlier.minimised_lits,
            chrono_backtracks: self.chrono_backtracks - earlier.chrono_backtracks,
            vivified: self.vivified - earlier.vivified,
            subsumed: self.subsumed - earlier.subsumed,
            strengthened: self.strengthened - earlier.strengthened,
            proof_steps: self.proof_steps - earlier.proof_steps,
            clauses: ClauseStats {
                problem: self.clauses.problem.saturating_sub(earlier.clauses.problem),
                learnt: self.clauses.learnt.saturating_sub(earlier.clauses.learnt),
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is
    /// already true the clause cannot be conflicting and the watcher
    /// is skipped without touching clause memory.
    blocker: Lit,
    /// Binary clauses are fully described by the watcher itself (the
    /// blocker *is* the only other literal), so propagation resolves
    /// them — skip, enqueue or conflict — without an arena access.
    binary: bool,
}

/// Lifetime allocation counters of one solver instance. Unlike
/// [`SolverStats::clauses`] these never decrease: they count what was
/// ever allocated, which is what the session layer compares between
/// solving modes (a reused context re-allocates nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Variables created.
    pub vars: u64,
    /// Clauses appended to the arena (problem + learnt, ignoring
    /// deletion and compaction).
    pub clauses: u64,
    /// Literal slots appended to the arena.
    pub arena_lits: u64,
}

/// A two-watched-literal CDCL SAT solver with assumptions, cores and
/// model enumeration.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    db: ClauseDb,
    watches: Vec<Vec<Watch>>,
    /// Current assignment per variable.
    assigns: Vec<LBool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause for each implied variable.
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    /// Binary-heap variable order (indexed heap over activity).
    heap: Vec<Var>,
    heap_index: Vec<Option<u32>>,
    /// Saved phases for polarity caching.
    phase: Vec<bool>,
    /// Unit clauses asserted at level 0.
    ok: bool,
    /// Assumptions of the current/most recent solve.
    assumptions: Vec<Lit>,
    /// Final conflict (subset of negated assumptions) of the last
    /// unsat answer.
    conflict: Vec<Lit>,
    /// Scratch: seen flags for conflict analysis.
    seen: Vec<bool>,
    /// Scratch: reusable copy of the clause under conflict analysis, so
    /// analysis can walk its literals while bumping activities without
    /// borrowing (or re-allocating from) the clause arena.
    clause_buf: Vec<Lit>,
    stats: SolverStats,
    /// Model of the last sat answer (assignment snapshot).
    model: Vec<LBool>,
    /// When enabled, every problem clause handed to [`Solver::add_clause`]
    /// is recorded verbatim (before root-level simplification), so the
    /// accumulated formula can be exported as a [`crate::Cnf`].
    clause_log: Option<Vec<Vec<Lit>>>,
    /// When enabled, every learnt/strengthened clause and every deletion
    /// is recorded as a DRAT step; each `Unsat` answer appends its final
    /// lemma, making the refutation independently checkable.
    proof: Option<Vec<ProofStep>>,
    /// In-solve heartbeat receiver (see [`Solver::set_progress`]).
    progress: Option<ProgressHook>,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            phase: Vec::new(),
            ok: true,
            assumptions: Vec::new(),
            conflict: Vec::new(),
            seen: Vec::new(),
            clause_buf: Vec::new(),
            stats: SolverStats::default(),
            model: Vec::new(),
            clause_log: None,
            proof: None,
            progress: None,
        }
    }

    /// Installs an in-solve progress sink: from now on the search loop
    /// emits a [`Heartbeat`] every [`SolverConfig::heartbeat_every`]
    /// conflicts. Heartbeats are observation-only — installing, removing
    /// or swapping a sink never changes any verdict, model or counter
    /// (the ablation suite pins verdict identity with heartbeats on).
    pub fn set_progress(&mut self, sink: Arc<dyn ProgressSink>) {
        self.progress = Some(ProgressHook(sink));
    }

    /// Removes the progress sink, if any.
    pub fn clear_progress(&mut self) {
        self.progress = None;
    }

    fn heartbeat_if_due(&self) {
        let every = self.config.heartbeat_every;
        if every == 0 || !self.stats.conflicts.is_multiple_of(every) {
            return;
        }
        let Some(hook) = &self.progress else { return };
        hook.0.heartbeat(&Heartbeat {
            solves: self.stats.solves,
            conflicts: self.stats.conflicts,
            trail_depth: self.trail.len() as u64,
            restarts: self.stats.restarts,
            learnt: self.db.num_learnt() as u64,
            proof_steps: self.stats.proof_steps,
        });
    }

    /// Starts recording every problem clause added from now on.
    ///
    /// Clauses added before this call are not recorded, so enable the
    /// log on a fresh solver when the goal is exporting the complete
    /// formula. Learnt clauses are never recorded — the log is the
    /// *problem*, not the solver's deductions.
    pub fn enable_clause_log(&mut self) {
        self.clause_log.get_or_insert_with(Vec::new);
    }

    /// The recorded problem clauses, or `None` when the log was never
    /// enabled. Clauses appear exactly as handed to
    /// [`Solver::add_clause`], in insertion order.
    pub fn logged_clauses(&self) -> Option<&[Vec<Lit>]> {
        self.clause_log.as_deref()
    }

    /// Starts recording a DRAT proof: one `Add` per learnt (or
    /// strengthened) clause, one `Delete` per discarded clause, and one
    /// final `Add` per `Unsat` answer — the empty clause for a
    /// formula-level refutation, or the negated unsat core for an
    /// assumption-level one. Replaying the steps through
    /// [`crate::check_drat`] against the formula (see
    /// [`Solver::enable_clause_log`]) certifies every `Unsat` verdict the
    /// solver has produced. Enable on a fresh solver: lemmas derived
    /// before recording started would leave holes in the proof.
    pub fn enable_proof(&mut self) {
        self.proof.get_or_insert_with(Vec::new);
    }

    /// The recorded proof so far, or `None` when never enabled. The log
    /// is cumulative across `solve` calls — sound because the formula
    /// only ever grows, so each recorded lemma stays derivable at its
    /// position in the step sequence.
    pub fn proof(&self) -> Option<&[ProofStep]> {
        self.proof.as_deref()
    }

    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Add(lits.to_vec()));
            self.stats.proof_steps += 1;
        }
    }

    fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(p) = &mut self.proof {
            p.push(ProofStep::Delete(lits.to_vec()));
            self.stats.proof_steps += 1;
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Work counters.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.clauses = self.db.stats();
        s
    }

    /// Lifetime allocation counters (variables, arena clauses, arena
    /// literal slots) — monotone, unaffected by deletion or compaction.
    pub fn alloc_stats(&self) -> AllocStats {
        let (clauses, arena_lits) = self.db.lifetime_allocs();
        AllocStats {
            vars: self.num_vars() as u64,
            clauses,
            arena_lits,
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.heap_index.push(None);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Ensures at least `n` variables exist, creating any missing ones.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver became trivially unsatisfiable at the
    /// root level (empty clause, or a unit contradicting earlier units);
    /// every later `solve` then answers `Unsat`. Duplicated literals are
    /// removed and tautologies (`x ∨ ¬x ∨ …`) are silently accepted.
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.into_iter().collect();
        if let Some(log) = &mut self.clause_log {
            log.push(c.clone());
        }
        c.sort_unstable();
        c.dedup();
        // Tautology / falsified-literal pruning at root level.
        let mut write = 0;
        let mut prev: Option<Lit> = None;
        for i in 0..c.len() {
            let l = c[i];
            if prev == Some(!l) {
                return true; // tautology: p and ¬p adjacent after sort
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at root
                LBool::False => {}          // drop falsified literal
                LBool::Undef => {
                    c[write] = l;
                    write += 1;
                    prev = Some(l);
                }
            }
        }
        c.truncate(write);
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(c[0], None);
                match self.propagate() {
                    None => true,
                    Some(_) => {
                        self.ok = false;
                        false
                    }
                }
            }
            _ => {
                let cref = self.db.alloc(&c, false, 0);
                self.attach(cref);
                true
            }
        }
    }

    /// `true` while no root-level contradiction has been derived.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1, binary) = {
            let c = self.db.lits(cref);
            (c[0], c[1], c.len() == 2)
        };
        self.watches[(!l0).watch_index()].push(Watch {
            cref,
            blocker: l1,
            binary,
        });
        self.watches[(!l1).watch_index()].push(Watch {
            cref,
            blocker: l0,
            binary,
        });
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].under(l)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let widx = p.watch_index();
            let mut i = 0;
            'watchers: while i < self.watches[widx].len() {
                let Watch {
                    cref,
                    blocker,
                    binary,
                } = self.watches[widx][i];
                if self.lit_value(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                if binary {
                    // The blocker is the clause's only other literal, so
                    // the clause is unit or conflicting — resolved right
                    // here, with no arena access and no watch movement.
                    if self.lit_value(blocker) == LBool::False {
                        self.qhead = self.trail.len();
                        return Some(cref);
                    }
                    self.unchecked_enqueue(blocker, Some(cref));
                    i += 1;
                    continue;
                }
                // Make sure the false literal (¬p) is at position 1.
                let false_lit = !p;
                {
                    let c = self.db.lits_mut(cref);
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                    debug_assert_eq!(c[1], false_lit);
                }
                let first = self.db.lits(cref)[0];
                if first != blocker && self.lit_value(first) == LBool::True {
                    self.watches[widx][i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.len(cref);
                for k in 2..len {
                    let lk = self.db.lits(cref)[k];
                    if self.lit_value(lk) != LBool::False {
                        self.db.lits_mut(cref).swap(1, k);
                        self.watches[widx].swap_remove(i);
                        self.watches[(!lk).watch_index()].push(Watch {
                            cref,
                            blocker: first,
                            binary: false,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
        }
        None
    }

    // ----- variable order (indexed max-heap over activity) -----

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_index[v.index()].is_some() {
            return;
        }
        self.heap.push(v);
        let i = self.heap.len() - 1;
        self.heap_index[v.index()] = Some(i as u32);
        self.heap_up(i);
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_index[self.heap[a].index()] = Some(a as u32);
        self.heap_index[self.heap[b].index()] = Some(b as u32);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_index[top.index()] = None;
        let last = self.heap.pop().expect("nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last.index()] = Some(0);
            self.heap_down(0);
        }
        Some(top)
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if let Some(i) = self.heap_index[v.index()] {
            self.heap_up(i as usize);
        }
    }

    fn var_decay(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn clause_bump(&mut self, cref: ClauseRef) {
        if self.db.bump_activity(cref, self.clause_inc) > 1e20 {
            let refs: Vec<ClauseRef> = self.db.learnt_refs().collect();
            for r in refs {
                self.db.scale_activity(r, 1e-20);
            }
            self.clause_inc *= 1e-20;
        }
    }

    fn clause_decay(&mut self) {
        self.clause_inc /= self.config.clause_decay;
    }

    // ----- search -----

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn backtrack_to(&mut self, lvl: u32) {
        if self.decision_level() <= lvl {
            return;
        }
        let bound = self.trail_lim[lvl as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.phase[v.index()] = l.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.heap_insert(v);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(lvl as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::from_index(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        // Reusable scratch: copy each clause out of the arena so its
        // literals can be walked while activities are bumped (no
        // per-conflict allocation once the buffer has grown).
        let mut buf = std::mem::take(&mut self.clause_buf);

        loop {
            self.clause_bump(confl);
            buf.clear();
            buf.extend_from_slice(self.db.lits(confl));
            for &q in &buf {
                // In a reason clause, skip the literal it implied (it is
                // not necessarily at index 0 for binary clauses, whose
                // watchers never reorder the stored literals).
                if p == Some(q) {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.var_bump(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to look at.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("uip literal").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("uip literal");
                break;
            }
            confl = self.reason[pv.index()].expect("implied literal has a reason");
            // The next round skips the literal this reason implied (p).
        }
        self.clause_buf = buf;

        // Clause minimisation: drop literals implied by the rest.
        if !self.config.disable_minimisation {
            let before = learnt.len();
            let keep: Vec<Lit> = learnt[1..]
                .iter()
                .copied()
                .filter(|&l| !self.lit_redundant(l, &learnt))
                .collect();
            learnt.truncate(1);
            learnt.extend(keep);
            self.stats.minimised_lits += (before - learnt.len()) as u64;
        }

        // Clear seen flags for all clause literals.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // (lit_redundant leaves extra seen flags; clear via trail scan.)
        for &l in &self.trail {
            self.seen[l.var().index()] = false;
        }

        // Find backtrack level: max level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    /// "Basic" clause minimisation: `l` is redundant if it was implied by
    /// a reason clause all of whose other literals are at level 0 or
    /// already in the learnt clause. Sound and cheap (no recursion, no
    /// shared marks), which is all the workloads here need.
    ///
    /// The implied literal itself (`¬l`, somewhere in the reason clause;
    /// not necessarily first for binary clauses) passes the `in_learnt`
    /// test through `l`, so the whole clause can be scanned uniformly.
    fn lit_redundant(&self, l: Lit, learnt: &[Lit]) -> bool {
        let Some(r) = self.reason[l.var().index()] else {
            return false;
        };
        let in_learnt = |v: Var| learnt.iter().any(|x| x.var() == v);
        self.db
            .lits(r)
            .iter()
            .all(|&q| self.level[q.var().index()] == 0 || in_learnt(q.var()))
    }

    fn learn(&mut self, learnt: Vec<Lit>, bt: u32) {
        self.proof_add(&learnt);
        self.backtrack_to(bt);
        if learnt.len() == 1 {
            self.unchecked_enqueue(learnt[0], None);
        } else {
            let lbd = self.compute_lbd(&learnt);
            let asserting = learnt[0];
            let cref = self.db.alloc(&learnt, true, lbd);
            self.attach(cref);
            self.clause_bump(cref);
            self.unchecked_enqueue(asserting, Some(cref));
        }
        self.var_decay();
        self.clause_decay();
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        let mut refs: Vec<ClauseRef> = self
            .db
            .learnt_refs()
            .filter(|&r| {
                // Never remove reason clauses of current assignments.
                let lits = self.db.lits(r);
                let locked = self.reason[lits[0].var().index()] == Some(r)
                    && self.lit_value(lits[0]) == LBool::True;
                !locked && lits.len() > 2
            })
            .collect();
        refs.sort_by(|&a, &b| {
            self.db.lbd(b).cmp(&self.db.lbd(a)).then(
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let remove = refs.len() / 2;
        for &r in refs.iter().take(remove) {
            self.detach(r);
            if self.proof.is_some() {
                let lits = self.db.lits(r).to_vec();
                self.proof_delete(&lits);
            }
            self.db.delete(r);
        }
        if self.db.needs_compaction() {
            self.compact_db();
        }
    }

    /// Compacts the clause arena and renumbers every stored handle.
    /// Watchers of deleted clauses were detached beforehand and reason
    /// clauses are never deleted (the locked check in `reduce_db`), so
    /// every live handle survives the remap.
    fn compact_db(&mut self) {
        let map = self.db.compact();
        for ws in &mut self.watches {
            ws.retain_mut(|w| match map.remap(w.cref) {
                Some(new) => {
                    w.cref = new;
                    true
                }
                None => false,
            });
        }
        for r in &mut self.reason {
            if let Some(cref) = *r {
                *r = map.remap(cref);
                debug_assert!(r.is_some(), "reason clauses survive compaction");
            }
        }
    }

    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.db.lits(cref);
            (c[0], c[1])
        };
        for l in [l0, l1] {
            let w = &mut self.watches[(!l).watch_index()];
            if let Some(pos) = w.iter().position(|x| x.cref == cref) {
                w.swap_remove(pos);
            }
        }
    }

    // ----- in-processing (between restarts, at decision level 0) -----

    /// `cref` is the reason of a live assignment and must not be touched.
    ///
    /// Non-binary clauses keep their propagated literal at position 0
    /// (the watch swap in `propagate`), but binary clauses propagate
    /// straight from the watcher entry without touching the arena, so
    /// the propagated literal can sit at either position — every
    /// literal must be checked.
    fn locked(&self, cref: ClauseRef) -> bool {
        self.db.lits(cref).iter().any(|&l| {
            self.reason[l.var().index()] == Some(cref) && self.lit_value(l) == LBool::True
        })
    }

    /// Runs the configured simplification passes. Returns `false` when a
    /// derived root unit closed the formula (root conflict).
    fn inprocess(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if self.config.vivify && !self.vivify_round() {
            return false;
        }
        if self.config.subsume && !self.subsume_round() {
            return false;
        }
        true
    }

    /// Replaces a learnt clause (already detached) by a strictly shorter
    /// one derived from it, with the matching DRAT add/delete pair — the
    /// new clause is recorded *before* the old one is dropped so its RUP
    /// derivation can still lean on the original. Returns `false` on a
    /// root conflict (the replacement was a unit contradicting the trail).
    fn replace_clause(&mut self, cref: ClauseRef, new: &[Lit], learnt: bool) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert!(!new.is_empty());
        self.proof_add(new);
        if self.proof.is_some() {
            let old = self.db.lits(cref).to_vec();
            self.proof_delete(&old);
        }
        let lbd = self.db.lbd(cref).min(new.len() as u32);
        self.db.delete(cref);
        if new.len() == 1 {
            match self.lit_value(new[0]) {
                LBool::True => true,
                LBool::False => false,
                LBool::Undef => {
                    self.unchecked_enqueue(new[0], None);
                    self.propagate().is_none()
                }
            }
        } else {
            let fresh = self.db.alloc(new, learnt, lbd);
            self.attach(fresh);
            true
        }
    }

    /// Vivification: for a window of recent learnt clauses, assume the
    /// negation of each literal in turn and propagate. A literal implied
    /// false is redundant; a conflict (or an implied-true literal) proves
    /// the prefix already a clause, shortening the original.
    fn vivify_round(&mut self) -> bool {
        const WINDOW: usize = 32;
        let refs: Vec<ClauseRef> = self.db.learnt_refs().filter(|&r| !self.locked(r)).collect();
        let start = refs.len().saturating_sub(WINDOW);
        for &cref in &refs[start..] {
            // A unit derived earlier in this round may have made this
            // clause the reason of a root assignment since the window
            // was collected; a locked clause must not be touched.
            if self.locked(cref) {
                continue;
            }
            let lits: Vec<Lit> = self.db.lits(cref).to_vec();
            self.detach(cref);
            self.new_decision_level();
            let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
            let mut shortened = false;
            let mut root_satisfied = false;
            for &l in &lits {
                match self.lit_value(l) {
                    LBool::True => {
                        if self.level[l.var().index()] == 0 {
                            // Satisfied at the root: the clause is dead
                            // weight regardless of the prefix.
                            root_satisfied = true;
                        } else {
                            // ¬prefix ⊢ l: prefix ∪ {l} subsumes the
                            // clause.
                            kept.push(l);
                            shortened = kept.len() < lits.len();
                        }
                        break;
                    }
                    LBool::False => {
                        // Root-falsified or implied false by the negated
                        // prefix — either way redundant in this clause.
                        shortened = true;
                    }
                    LBool::Undef => {
                        kept.push(l);
                        self.unchecked_enqueue(!l, None);
                        if self.propagate().is_some() {
                            // ¬prefix alone is contradictory: the prefix
                            // is a clause on its own.
                            shortened = kept.len() < lits.len();
                            break;
                        }
                    }
                }
            }
            self.backtrack_to(0);
            if root_satisfied {
                if self.proof.is_some() {
                    let old = self.db.lits(cref).to_vec();
                    self.proof_delete(&old);
                }
                self.db.delete(cref);
                self.stats.vivified += 1;
            } else if shortened && !kept.is_empty() {
                self.stats.vivified += 1;
                if !self.replace_clause(cref, &kept, true) {
                    return false;
                }
            } else {
                self.attach(cref);
            }
        }
        true
    }

    /// Bounded subsumption and self-subsuming resolution over a window of
    /// the shortest learnt clauses: a clause containing a (possibly
    /// one-literal-flipped) copy of a shorter one is deleted (resp.
    /// strengthened by dropping the flipped literal).
    fn subsume_round(&mut self) -> bool {
        const WINDOW: usize = 48;
        let mut refs: Vec<ClauseRef> = self.db.learnt_refs().filter(|&r| !self.locked(r)).collect();
        refs.sort_by_key(|&r| self.db.len(r));
        refs.truncate(WINDOW);
        let mut dead = vec![false; refs.len()];
        let mut mark = vec![false; self.num_vars() * 2];
        for bi in 0..refs.len() {
            // Units derived by strengthening earlier clauses in this
            // round can lock window members after the fact.
            if dead[bi] || self.locked(refs[bi]) {
                continue;
            }
            let b = refs[bi];
            let blits: Vec<Lit> = self.db.lits(b).to_vec();
            for &l in &blits {
                mark[l.watch_index()] = true;
            }
            // Deletion beats strengthening; keep the first of each found.
            let mut subsumed = false;
            let mut flipped: Option<Lit> = None;
            for (ai, &a) in refs.iter().enumerate() {
                if ai == bi || dead[ai] || self.db.len(a) > blits.len() {
                    continue;
                }
                let mut neg: Option<Lit> = None;
                let mut fits = true;
                for &l in self.db.lits(a) {
                    if mark[l.watch_index()] {
                        continue;
                    }
                    if neg.is_none() && mark[(!l).watch_index()] {
                        neg = Some(l);
                        continue;
                    }
                    fits = false;
                    break;
                }
                if !fits {
                    continue;
                }
                match neg {
                    None => {
                        subsumed = true;
                        break;
                    }
                    Some(l) => {
                        if flipped.is_none() {
                            flipped = Some(!l);
                        }
                    }
                }
            }
            for &l in &blits {
                mark[l.watch_index()] = false;
            }
            if subsumed {
                self.detach(b);
                self.proof_delete(&blits);
                self.db.delete(b);
                dead[bi] = true;
                self.stats.subsumed += 1;
            } else if let Some(drop) = flipped {
                // Self-subsuming resolution: the resolvent of the two
                // clauses on the flipped literal is exactly `b` without
                // `drop`, and it subsumes `b`.
                let new: Vec<Lit> = blits.iter().copied().filter(|&l| l != drop).collect();
                self.detach(b);
                dead[bi] = true;
                self.stats.strengthened += 1;
                if !self.replace_clause(b, &new, true) {
                    return false;
                }
            }
        }
        true
    }

    fn luby(x: u64) -> u64 {
        // Luby sequence (0-based x): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        // luby(i) = 2^(k-1) if i = 2^k - 1, else luby(i - (2^(k-1) - 1))
        // for the smallest k with 2^k - 1 >= i (1-based i).
        let mut i = x + 1;
        loop {
            let mut k: u32 = 1;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
            if (1u64 << k) - 1 == i {
                return 1u64 << (k - 1);
            }
            i -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions act like temporary unit clauses: they constrain this
    /// call only. On `Unsat`, [`Solver::unsat_core`] returns the subset of
    /// assumptions used to derive the conflict, which the SMT layer uses
    /// to report *which* constraint group is inconsistent.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        self.assumptions = assumptions.to_vec();
        self.conflict.clear();
        self.model.clear();
        if !self.ok {
            // A root contradiction is already on the books; the empty
            // clause follows from the formula by propagation alone.
            self.proof_add(&[]);
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);

        let mut restarts: u64 = 0;
        // Stabilizing restarts: alternate short focused intervals with
        // 10× stretched stable ones, doubling each phase's length.
        let mut stable = false;
        let mut phase_conflicts: u64 = 0;
        let mut phase_limit: u64 = 1024;
        let stretch = |cfg: &SolverConfig, stable: bool| {
            if cfg.stable_restarts && stable {
                10
            } else {
                1
            }
        };
        let mut conflicts_left = Solver::luby(restarts)
            .saturating_mul(self.config.restart_base)
            .saturating_mul(stretch(&self.config, stable));
        let mut max_learnt =
            (self.db.num_problem() as f64 * self.config.learnt_size_factor).max(100.0);

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.heartbeat_if_due();
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.proof_add(&[]);
                    return SolveResult::Unsat;
                }
                let (learnt, mut bt) = self.analyze(confl);
                // Chronological backtracking: a very long jump discards a
                // consistent trail prefix the search just built. Retreat a
                // single level instead — the learnt clause is still
                // asserting there (its own literal was assigned at the
                // conflict level, every other literal at a level ≤ bt).
                let cur = self.decision_level();
                if self.config.chrono_backtrack
                    && learnt.len() > 1
                    && cur - bt > self.config.chrono_threshold
                {
                    bt = cur - 1;
                    self.stats.chrono_backtracks += 1;
                }
                // Backtracking below the assumption frontier is fine: the
                // decision loop re-places assumptions, and a falsified one
                // is caught there by `analyze_final`.
                self.learn(learnt, bt);
                conflicts_left = conflicts_left.saturating_sub(1);
                phase_conflicts += 1;
            } else {
                if self.db.num_learnt() as f64 >= max_learnt + self.trail.len() as f64 {
                    self.reduce_db();
                    max_learnt *= self.config.learnt_size_inc;
                }
                if conflicts_left == 0 && !self.config.disable_restarts {
                    self.stats.restarts += 1;
                    restarts += 1;
                    if self.config.stable_restarts && phase_conflicts >= phase_limit {
                        stable = !stable;
                        phase_conflicts = 0;
                        phase_limit = phase_limit.saturating_mul(2);
                    }
                    conflicts_left = Solver::luby(restarts)
                        .saturating_mul(self.config.restart_base)
                        .saturating_mul(stretch(&self.config, stable));
                    self.backtrack_to(0);
                    if !self.inprocess() {
                        self.ok = false;
                        self.proof_add(&[]);
                        return SolveResult::Unsat;
                    }
                    continue;
                }
                // Place assumptions as pseudo-decisions first.
                let mut placed_all = true;
                let assumptions = self.assumptions.clone();
                for (i, &a) in assumptions.iter().enumerate() {
                    if (self.decision_level() as usize) > i {
                        continue;
                    }
                    match self.lit_value(a) {
                        LBool::True => {
                            // Hold the level structure: a dummy level keeps
                            // the frontier aligned with assumption count.
                            self.new_decision_level();
                        }
                        LBool::False => {
                            self.analyze_final(a);
                            // The negated core is the final lemma of this
                            // refutation: every decision level below here
                            // is an assumption pseudo-decision, so the
                            // conflict re-derives by propagation alone
                            // once the core assumptions are assumed.
                            let core = self.conflict.clone();
                            self.proof_add(&core);
                            self.backtrack_to(0);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            self.new_decision_level();
                            self.unchecked_enqueue(a, None);
                            placed_all = false;
                            break;
                        }
                    }
                }
                if !placed_all {
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.model = self.assigns.clone();
                        self.backtrack_to(0);
                        return SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        let l = Lit::new(v, self.phase[v.index()]);
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Builds the unsat core when an assumption is directly falsified.
    fn analyze_final(&mut self, failed: Lit) {
        self.conflict.clear();
        self.conflict.push(!failed);
        if self.decision_level() == 0 {
            return;
        }
        let mut seen = vec![false; self.num_vars()];
        seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if !seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    // A decision reached here is an assumption feeding the
                    // conflict. `l == !failed` happens when the same
                    // variable was assumed with both polarities; the core
                    // must then contain both.
                    if self.assumptions.contains(&l) {
                        self.conflict.push(!l);
                    }
                }
                Some(r) => {
                    // Skip the implied literal by variable (it need not
                    // sit at index 0 in a binary reason clause).
                    for &q in self.db.lits(r) {
                        if q.var() != v && self.level[q.var().index()] > 0 {
                            seen[q.var().index()] = true;
                        }
                    }
                }
            }
            seen[v.index()] = false;
        }
    }

    /// The value of `v` in the most recent satisfying model, or `None` if
    /// the last answer was not `Sat` (or the variable was irrelevant and
    /// left unassigned — the solver assigns every variable, so that case
    /// only arises for variables created after the solve).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(LBool::True) => Some(true),
            Some(LBool::False) => Some(false),
            _ => None,
        }
    }

    /// The complete model of the last `Sat` answer as a vector indexed by
    /// variable index. Empty if the last answer was not `Sat`.
    pub fn model(&self) -> Vec<bool> {
        self.model
            .iter()
            .map(|&b| matches!(b, LBool::True))
            .collect()
    }

    /// After an `Unsat` answer to [`Solver::solve_with`], the subset of
    /// assumptions whose conjunction is inconsistent with the formula
    /// (each returned literal is the *negation* of a failed assumption,
    /// i.e. the core is returned as the conflict clause `¬a₁ ∨ … ∨ ¬aₖ`).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([Lit::pos(v)]));
        assert!(!s.add_clause([Lit::neg(v)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([Lit::pos(v), Lit::neg(v)]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn implication_chain() {
        // x1 ∧ (¬x1∨x2) ∧ (¬x2∨x3) ∧ ... forces all true.
        let mut s = Solver::new();
        let ls = vars(&mut s, 20);
        s.add_clause([ls[0]]);
        for w in ls.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for &l in &ls {
            assert_eq!(s.value(l.var()), Some(true));
        }
    }

    #[test]
    fn xor_chain_unsat() {
        // Odd parity chain with contradictory endpoints.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // a xor b
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(a), Lit::neg(b)]);
        // b xor c
        s.add_clause([Lit::pos(b), Lit::pos(c)]);
        s.add_clause([Lit::neg(b), Lit::neg(c)]);
        // a xor c  (inconsistent: xor chain implies a == c)
        s.add_clause([Lit::pos(a), Lit::pos(c)]);
        s.add_clause([Lit::neg(a), Lit::neg(c)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index form mirrors the formula
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// PHP(n+1, n) with `config`: the classic conflict generator.
    fn pigeonhole_solver(n: usize, config: SolverConfig) -> Solver {
        let mut s = Solver::with_config(config);
        let p: Vec<Vec<Lit>> = (0..=n)
            .map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for i in 0..=n {
            for j in (i + 1)..=n {
                for (&a, &b) in p[i].iter().zip(&p[j]) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        s
    }

    #[derive(Default)]
    struct CollectSink(std::sync::Mutex<Vec<Heartbeat>>);

    impl ProgressSink for CollectSink {
        fn heartbeat(&self, beat: &Heartbeat) {
            self.0.lock().unwrap().push(*beat);
        }
    }

    #[test]
    fn heartbeats_fire_every_n_conflicts_and_are_deterministic() {
        let run = || {
            let config = SolverConfig {
                heartbeat_every: 8,
                ..SolverConfig::default()
            };
            let mut s = pigeonhole_solver(6, config);
            let sink = Arc::new(CollectSink::default());
            s.set_progress(Arc::clone(&sink) as Arc<dyn ProgressSink>);
            assert_eq!(s.solve(), SolveResult::Unsat);
            let beats = sink.0.lock().unwrap().clone();
            (beats, s.stats())
        };
        let (beats, stats) = run();
        assert!(
            beats.len() >= 2,
            "PHP(7,6) must produce enough conflicts for several beats"
        );
        for beat in &beats {
            assert_eq!(beat.conflicts % 8, 0, "beats fire on the conflict grid");
            assert_eq!(beat.solves, 1);
        }
        let conflicts: Vec<u64> = beats.iter().map(|b| b.conflicts).collect();
        let mut sorted = conflicts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(conflicts, sorted, "beats arrive in order, no duplicates");
        // Event-count-based cadence: a second identical run emits the
        // identical beat sequence.
        let (beats2, stats2) = run();
        assert_eq!(beats, beats2);
        assert_eq!(stats, stats2);
    }

    #[test]
    fn heartbeats_are_observation_only() {
        let mut plain = pigeonhole_solver(5, SolverConfig::default());
        assert_eq!(plain.solve(), SolveResult::Unsat);

        let config = SolverConfig {
            heartbeat_every: 1,
            ..SolverConfig::default()
        };
        let mut observed = pigeonhole_solver(5, config);
        let sink = Arc::new(CollectSink::default());
        observed.set_progress(Arc::clone(&sink) as Arc<dyn ProgressSink>);
        assert_eq!(observed.solve(), SolveResult::Unsat);
        assert_eq!(
            plain.stats(),
            observed.stats(),
            "a heartbeat sink must never perturb the search"
        );
        assert_eq!(
            sink.0.lock().unwrap().len() as u64,
            observed.stats().conflicts,
            "heartbeat_every=1 beats once per conflict"
        );

        observed.clear_progress();
        let before = sink.0.lock().unwrap().len();
        let _ = observed.solve();
        assert_eq!(
            sink.0.lock().unwrap().len(),
            before,
            "cleared sink is quiet"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index form mirrors the formula
    fn pigeonhole_5_into_5_sat() {
        let n = 5;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for h in 0..n {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause([!p[i][h], !p[j][h]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify it's a real matching.
        for h in 0..n {
            let count = (0..n)
                .filter(|&i| s.value(p[i][h].var()) == Some(true))
                .count();
            assert!(count <= 1, "hole {h} used {count} times");
        }
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        assert_eq!(
            s.solve_with(&[Lit::neg(a), Lit::neg(b)]),
            SolveResult::Unsat
        );
        // Formula itself still sat.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with(&[Lit::neg(a)]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn unsat_core_is_minimal_here() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([Lit::neg(a), Lit::neg(b)]); // a,b mutually exclusive
        let r = s.solve_with(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]);
        assert_eq!(r, SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        // Core is a clause over negated assumptions; c must not appear.
        assert!(core.contains(&Lit::neg(a)) || core.contains(&Lit::neg(b)));
        assert!(!core.contains(&Lit::neg(c)));
    }

    #[test]
    fn conflicting_assumption_pair() {
        let mut s = Solver::new();
        let a = s.new_var();
        let r = s.solve_with(&[Lit::pos(a), Lit::neg(a)]);
        assert_eq!(r, SolveResult::Unsat);
        assert!(s.unsat_core().contains(&Lit::neg(a)) || s.unsat_core().contains(&Lit::pos(a)));
    }

    #[test]
    fn random_3sat_matches_bruteforce() {
        // Deterministic LCG-generated formulas, checked against brute force.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for trial in 0..60 {
            let n = 3 + next() % 8; // 3..10 vars
            let m = 3 + next() % (4 * n); // clauses
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push((next() % n, next() % 2 == 0));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << n) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            let vs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for cl in &clauses {
                s.add_clause(cl.iter().map(|&(v, pos)| Lit::new(vs[v], pos)));
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, brute_sat, "trial {trial} disagreed (n={n})");
            if got {
                // Check the model actually satisfies.
                for cl in &clauses {
                    assert!(cl.iter().any(|&(v, pos)| s.value(vs[v]) == Some(pos)));
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(Solver::luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let ls = vars(&mut s, 10);
        for w in ls.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        s.add_clause([ls[0]]);
        s.solve();
        let st = s.stats();
        assert_eq!(st.solves, 1);
        assert!(st.propagations > 0);
    }

    #[test]
    fn binary_heavy_formula_with_assumptions() {
        // An implication cycle of binary clauses plus an escape hatch;
        // exercises the binary watcher fast path in both polarities,
        // including conflicts inside binary chains.
        let mut s = Solver::new();
        let ls = vars(&mut s, 16);
        for w in ls.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        // Close the cycle: last implies first.
        s.add_clause([!ls[15], ls[0]]);
        assert_eq!(s.solve_with(&[ls[3]]), SolveResult::Sat);
        for &l in &ls {
            assert_eq!(s.value(l.var()), Some(true));
        }
        // Forcing one variable low while another is high is a conflict
        // that must be traced through binary reason clauses.
        assert_eq!(s.solve_with(&[ls[3], !ls[9]]), SolveResult::Unsat);
        let core = s.unsat_core();
        assert!(core.contains(&!ls[3]) && core.contains(&ls[9]), "{core:?}");
        assert_eq!(s.solve_with(&[!ls[9]]), SolveResult::Sat);
        for &l in &ls {
            assert_eq!(s.value(l.var()), Some(false));
        }
    }

    #[test]
    fn compaction_preserves_solver_state() {
        // Learn a pile of clauses, compact the arena mid-stream, and
        // keep solving: watches and reasons must follow the remap.
        let mut seed = 0xdeadbeefu64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        let mut s = Solver::with_config(SolverConfig {
            restart_base: 4,
            learnt_size_factor: 0.05,
            ..SolverConfig::default()
        });
        let n = 40;
        let vs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for _ in 0..160 {
            let a = Lit::new(vs[next() % n], next() % 2 == 0);
            let b = Lit::new(vs[next() % n], next() % 2 == 0);
            let c = Lit::new(vs[next() % n], next() % 2 == 0);
            s.add_clause([a, b, c]);
        }
        for round in 0..40 {
            let a = Lit::new(vs[next() % n], next() % 2 == 0);
            let r1 = s.solve_with(&[a]);
            s.compact_db();
            let r2 = s.solve_with(&[a]);
            assert_eq!(r1, r2, "round {round}: verdict changed across compaction");
        }
    }

    #[test]
    fn binary_reason_clauses_are_locked() {
        // A binary clause propagates straight from its watcher entry,
        // so its propagated literal is not necessarily at position 0 —
        // locked() must still protect it from in-processing deletion.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        // Stored as [a, b]; the unit ¬a forces b with the binary clause
        // as reason, and b sits at position 1.
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(a)]);
        assert!(s.propagate().is_none());
        assert_eq!(s.lit_value(Lit::pos(b)), LBool::True);
        let binary = s.reason[b.index()].expect("b was propagated with a reason");
        assert_eq!(s.db.len(binary), 2);
        assert_eq!(s.db.lits(binary)[1], Lit::pos(b), "b sits at position 1");
        assert!(s.locked(binary), "binary reason clause must be locked");
    }

    #[test]
    fn alloc_stats_are_monotone() {
        let mut s = Solver::new();
        let ls = vars(&mut s, 6);
        for w in ls.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        s.add_clause([ls[0], ls[2], ls[4]]);
        let before = s.alloc_stats();
        assert_eq!(before.vars, 6);
        assert_eq!(before.clauses, 6);
        assert_eq!(before.arena_lits, 13);
        s.solve();
        let after = s.alloc_stats();
        assert!(after.clauses >= before.clauses);
        assert!(after.arena_lits >= before.arena_lits);
        // Re-solving an unchanged formula allocates nothing new.
        s.solve();
        assert_eq!(s.alloc_stats(), after);
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([Lit::neg(a)]);
        s.add_clause([Lit::neg(b)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    // ----- proofs and in-processing -----

    use crate::cnf::Cnf;
    use crate::drat::{check_drat, CheckMode};

    /// A solver that records both the formula and the proof, plus the
    /// exported [`Cnf`] to check the proof against.
    fn certified(config: SolverConfig) -> Solver {
        let mut s = Solver::with_config(config);
        s.enable_clause_log();
        s.enable_proof();
        s
    }

    fn exported_cnf(s: &Solver) -> Cnf {
        let mut cnf = Cnf::new();
        cnf.reserve_vars(s.num_vars());
        for c in s.logged_clauses().expect("clause log enabled") {
            cnf.add_clause(c.iter().copied());
        }
        cnf
    }

    fn assert_certified(s: &Solver) {
        let cnf = exported_cnf(s);
        let proof = s.proof().expect("proof enabled");
        let out = check_drat(&cnf, proof, CheckMode::Last).expect("proof must verify");
        assert!(out.checked >= 1);
        check_drat(&cnf, proof, CheckMode::All).expect("every lemma must be RUP");
    }

    #[test]
    fn pigeonhole_proof_verifies() {
        let mut s = certified(SolverConfig::default());
        let p: Vec<Vec<Lit>> = (0..4)
            .map(|_| (0..3).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for (i, pi) in p.iter().enumerate() {
            for pj in p.iter().skip(i + 1) {
                for (&a, &b) in pi.iter().zip(pj) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().proof_steps > 0);
        assert_certified(&s);
    }

    #[test]
    fn assumption_core_proof_verifies() {
        let mut s = certified(SolverConfig::default());
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([Lit::neg(a), Lit::neg(b)]);
        assert_eq!(
            s.solve_with(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]),
            SolveResult::Unsat
        );
        // The final lemma is the negated core, not the empty clause.
        match s.proof().unwrap().last() {
            Some(ProofStep::Add(lits)) => assert!(!lits.is_empty()),
            other => panic!("expected a final core lemma, got {other:?}"),
        }
        assert_certified(&s);
        // A later formula-level refutation extends the same proof.
        s.add_clause([Lit::pos(a)]);
        s.add_clause([Lit::pos(b)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.proof().unwrap().last(), Some(&ProofStep::Add(vec![])));
        assert_certified(&s);
    }

    /// An aggressive configuration that forces restarts (and therefore
    /// in-processing) even on tiny formulas.
    fn aggressive() -> SolverConfig {
        SolverConfig {
            restart_base: 1,
            learnt_size_factor: 0.05,
            chrono_threshold: 2,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn random_formulas_certified_under_inprocessing() {
        let mut seed = 0x51a7e5u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        let mut unsat_seen = 0;
        let mut triggered = SolverStats::default();
        for trial in 0..80 {
            let n = 4 + next() % 7;
            let m = 2 * n + next() % (5 * n);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..m {
                clauses.push((0..3).map(|_| (next() % n, next() % 2 == 0)).collect());
            }
            let mut brute_sat = false;
            'outer: for bits in 0..(1u32 << n) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = certified(aggressive());
            let vs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for cl in &clauses {
                s.add_clause(cl.iter().map(|&(v, pos)| Lit::new(vs[v], pos)));
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, brute_sat, "trial {trial} disagreed (n={n}, m={m})");
            if !got {
                unsat_seen += 1;
                assert_certified(&s);
            }
            triggered.merge(&s.stats());
        }
        assert!(unsat_seen > 5, "want UNSAT coverage, got {unsat_seen}");
        assert!(
            triggered.vivified + triggered.subsumed + triggered.strengthened > 0,
            "in-processing never fired: {triggered:?}"
        );
    }

    #[test]
    fn verdicts_identical_under_all_inprocessing_flags() {
        let mut seed = 0xab1a7eu64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for trial in 0..12 {
            let n = 5 + next() % 5;
            let m = 3 * n + next() % (3 * n);
            let clauses: Vec<Vec<(usize, bool)>> = (0..m)
                .map(|_| (0..3).map(|_| (next() % n, next() % 2 == 0)).collect())
                .collect();
            let mut verdicts = Vec::new();
            for combo in 0..16u32 {
                let config = SolverConfig {
                    chrono_backtrack: combo & 1 != 0,
                    vivify: combo & 2 != 0,
                    subsume: combo & 4 != 0,
                    stable_restarts: combo & 8 != 0,
                    ..aggressive()
                };
                let mut s = Solver::with_config(config);
                let vs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
                for cl in &clauses {
                    s.add_clause(cl.iter().map(|&(v, pos)| Lit::new(vs[v], pos)));
                }
                verdicts.push(s.solve());
            }
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "trial {trial}: verdicts diverge across flag combos: {verdicts:?}"
            );
        }
    }

    #[test]
    fn chrono_backtracking_fires_on_deep_jumps() {
        // A long implication ladder with a contradiction at the end makes
        // analysis jump far; with the threshold at 0 every long jump is
        // taken chronologically instead.
        let mut s = Solver::with_config(SolverConfig {
            chrono_threshold: 0,
            restart_base: 1000,
            ..SolverConfig::default()
        });
        let n = 30;
        let vs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for w in vs.windows(2) {
            s.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause([Lit::neg(vs[0]), Lit::neg(vs[n - 1])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        // At least sanity: the run completed and any chrono backtracks
        // kept the verdict correct (cross-checked against plain config).
        let mut plain = Solver::with_config(SolverConfig {
            chrono_backtrack: false,
            ..SolverConfig::default()
        });
        let pv: Vec<Var> = (0..n).map(|_| plain.new_var()).collect();
        for w in pv.windows(2) {
            plain.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        plain.add_clause([Lit::neg(pv[0]), Lit::neg(pv[n - 1])]);
        assert_eq!(plain.solve(), SolveResult::Sat);
    }
}

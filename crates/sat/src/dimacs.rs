//! DIMACS CNF reading and writing.
//!
//! The standard interchange format, provided so formulas produced by the
//! llhsc pipeline can be inspected with (or cross-checked against)
//! external SAT solvers.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};

/// Largest variable count a DIMACS header may declare. Bounded by the
/// literal encoding (`2 * index + sign` must fit in a `u32`); a header
/// beyond this cannot be represented and is rejected up front rather
/// than overflowing deep inside [`Lit::new`].
pub const MAX_VARS: usize = (u32::MAX / 2) as usize;

/// Error produced while parsing DIMACS input. Every parse-level variant
/// carries the 1-based line number where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// The `p cnf <vars> <clauses>` header is malformed, duplicated, or
    /// declares more than [`MAX_VARS`] variables.
    BadHeader { line: usize, text: String },
    /// Clause data appeared before any `p cnf` header.
    MissingHeader { line: usize },
    /// A token could not be parsed as a literal.
    BadLiteral { line: usize, token: String },
    /// A literal references a variable beyond the header's count.
    VarOutOfRange { line: usize, var: i64, max: usize },
    /// A clause was not terminated by `0` before end of input.
    UnterminatedClause { line: usize },
    /// An underlying I/O failure.
    Io(String),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::BadHeader { line, text } => {
                write!(f, "line {line}: malformed DIMACS header: {text:?}")
            }
            DimacsError::MissingHeader { line } => {
                write!(f, "line {line}: clause data before the 'p cnf' header")
            }
            DimacsError::BadLiteral { line, token } => {
                write!(f, "line {line}: bad literal token {token:?}")
            }
            DimacsError::VarOutOfRange { line, var, max } => {
                write!(
                    f,
                    "line {line}: variable {var} exceeds declared maximum {max}"
                )
            }
            DimacsError::UnterminatedClause { line } => {
                write!(f, "line {line}: unterminated clause at end of input")
            }
            DimacsError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for DimacsError {}

/// Parses a DIMACS CNF document into a [`Cnf`].
///
/// Comment lines (`c …`) and blank lines are skipped. Clauses may span
/// lines; each must end with a `0` terminator.
///
/// # Errors
///
/// Returns a [`DimacsError`] on malformed input or I/O failure.
///
/// ```
/// # fn main() -> Result<(), llhsc_sat::DimacsError> {
/// let text = "c demo\np cnf 2 2\n1 2 0\n-1 0\n";
/// let cnf = llhsc_sat::parse_dimacs(text.as_bytes())?;
/// assert_eq!(cnf.num_clauses(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs<R: BufRead>(mut reader: R) -> Result<Cnf, DimacsError> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| DimacsError::Io(e.to_string()))?;

    let mut cnf = Cnf::new();
    let mut declared_vars: Option<usize> = None;
    let mut current: Vec<Lit> = Vec::new();
    let mut last_content_line = 1;

    for (lineno, line) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        last_content_line = line_no;
        if line.starts_with('p') {
            let bad = || DimacsError::BadHeader {
                line: line_no,
                text: line.to_string(),
            };
            if declared_vars.is_some() {
                return Err(bad());
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(bad());
            }
            let nv: usize = parts[2].parse().map_err(|_| bad())?;
            if nv > MAX_VARS {
                return Err(bad());
            }
            declared_vars = Some(nv);
            cnf.reserve_vars(nv);
            continue;
        }
        let max = match declared_vars {
            Some(max) => max,
            None => return Err(DimacsError::MissingHeader { line: line_no }),
        };
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| DimacsError::BadLiteral {
                line: line_no,
                token: tok.to_string(),
            })?;
            if v == 0 {
                cnf.add_clause(current.drain(..));
                continue;
            }
            let idx = v.unsigned_abs() as usize - 1;
            if idx >= max {
                return Err(DimacsError::VarOutOfRange {
                    line: line_no,
                    var: v,
                    max,
                });
            }
            current.push(Lit::new(Var::from_index(idx), v > 0));
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::UnterminatedClause {
            line: last_content_line,
        });
    }
    Ok(cnf)
}

/// Writes a [`Cnf`] in DIMACS format.
///
/// A `c`-comment header naming the producing tool and the variable and
/// clause counts precedes the `p cnf` line, matching what external
/// `#SAT` and model-counting tools emit; [`parse_dimacs`] (and any
/// conforming reader) skips it.
///
/// # Errors
///
/// Propagates I/O failures from the writer as [`DimacsError::Io`].
pub fn write_dimacs<W: Write>(cnf: &Cnf, mut w: W) -> Result<(), DimacsError> {
    let io = |e: std::io::Error| DimacsError::Io(e.to_string());
    writeln!(w, "c generated by llhsc-sat {}", env!("CARGO_PKG_VERSION")).map_err(io)?;
    writeln!(w, "c vars {} clauses {}", cnf.num_vars(), cnf.num_clauses()).map_err(io)?;
    writeln!(w, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses()).map_err(io)?;
    for clause in cnf.clauses() {
        for l in clause {
            let n = (l.var().index() + 1) as i64;
            write!(w, "{} ", if l.is_positive() { n } else { -n }).map_err(io)?;
        }
        writeln!(w, "0").map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parse_simple() {
        let cnf = parse_dimacs("p cnf 3 2\n1 -2 0\n3 0\n".as_bytes()).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn parse_comments_and_blanks() {
        let src = "c hello\n\nc more\np cnf 1 1\nc inline-ish\n1 0\n";
        let cnf = parse_dimacs(src.as_bytes()).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn parse_multiline_clause() {
        let cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n".as_bytes()).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses().next().unwrap().len(), 3);
    }

    #[test]
    fn reject_bad_header() {
        assert!(matches!(
            parse_dimacs("p dnf 1 1\n1 0\n".as_bytes()),
            Err(DimacsError::BadHeader { line: 1, .. })
        ));
    }

    #[test]
    fn reject_duplicate_header() {
        assert!(matches!(
            parse_dimacs("p cnf 2 1\np cnf 3 1\n1 0\n".as_bytes()),
            Err(DimacsError::BadHeader { line: 2, .. })
        ));
    }

    #[test]
    fn reject_oversized_header() {
        let src = format!("p cnf {} 1\n1 0\n", MAX_VARS + 1);
        assert!(matches!(
            parse_dimacs(src.as_bytes()),
            Err(DimacsError::BadHeader { line: 1, .. })
        ));
        let ok = format!("p cnf {MAX_VARS} 0\n");
        assert!(parse_dimacs(ok.as_bytes()).is_ok());
    }

    #[test]
    fn reject_clauses_before_header() {
        // Clause data before `p cnf` used to bypass the range check
        // entirely, so a huge literal reached Var::from_index and
        // panicked instead of erroring.
        assert!(matches!(
            parse_dimacs("c intro\n1 -2 0\n".as_bytes()),
            Err(DimacsError::MissingHeader { line: 2 })
        ));
        assert!(matches!(
            parse_dimacs("4294967297 0\n".as_bytes()),
            Err(DimacsError::MissingHeader { line: 1 })
        ));
    }

    #[test]
    fn reject_bad_literal() {
        assert!(matches!(
            parse_dimacs("p cnf 1 1\nx 0\n".as_bytes()),
            Err(DimacsError::BadLiteral { .. })
        ));
    }

    #[test]
    fn reject_out_of_range() {
        assert!(matches!(
            parse_dimacs("p cnf 1 1\n2 0\n".as_bytes()),
            Err(DimacsError::VarOutOfRange { .. })
        ));
        // A literal beyond u32 must error, not panic in Var::from_index.
        assert!(matches!(
            parse_dimacs("p cnf 1 1\n4294967297 0\n".as_bytes()),
            Err(DimacsError::VarOutOfRange { line: 2, .. })
        ));
    }

    #[test]
    fn reject_unterminated() {
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n1 2\n".as_bytes()),
            Err(DimacsError::UnterminatedClause { line: 2 })
        ));
    }

    #[test]
    fn errors_name_their_line() {
        let err = parse_dimacs("p dnf 1 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().starts_with("line 1:"), "{err}");
        let err = parse_dimacs("p cnf 2 1\nc pad\n1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().starts_with("line 3:"), "{err}");
    }

    #[test]
    fn roundtrip() {
        let src = "p cnf 4 3\n1 -2 0\n-3 4 0\n2 0\n";
        let cnf = parse_dimacs(src.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_dimacs(&cnf, &mut out).unwrap();
        let cnf2 = parse_dimacs(out.as_slice()).unwrap();
        assert_eq!(cnf, cnf2);
    }

    #[test]
    fn writer_emits_comment_header() {
        let cnf = parse_dimacs("p cnf 2 1\n1 -2 0\n".as_bytes()).unwrap();
        let mut out = Vec::new();
        write_dimacs(&cnf, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            format!("c generated by llhsc-sat {}", env!("CARGO_PKG_VERSION"))
        );
        assert_eq!(lines[1], "c vars 2 clauses 1");
        assert_eq!(lines[2], "p cnf 2 1");
    }

    #[test]
    fn parsed_formula_solves() {
        let cnf = parse_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 0\n".as_bytes()).unwrap();
        assert_eq!(cnf.to_solver().solve(), SolveResult::Unsat);
    }
}

//! DRAT proofs: emission format and an in-tree backward checker.
//!
//! An UNSAT answer is the one verdict a user cannot cross-examine by
//! testing the witness — there is none. DRAT (Deletion Resolution
//! Asymmetric Tautology) is the standard certificate format of the SAT
//! competitions: the solver logs every clause it learns (`Add`) and
//! every clause it discards (`Delete`); a proof checker then replays
//! the additions and confirms each one follows from what came before by
//! *reverse unit propagation* (RUP) — assume every literal of the
//! learnt clause false, propagate, and a conflict must appear. The
//! checker shares no code with the solver's search, so a bug in the
//! CDCL machinery cannot vouch for itself.
//!
//! The solver (see [`crate::SolverConfig`] and
//! [`Solver::enable_proof`](crate::Solver::enable_proof)) emits:
//!
//! * one `Add` per learnt clause (including learnt units and the
//!   strengthened clauses produced by vivification and self-subsuming
//!   resolution),
//! * one `Delete` per clause removed by database reduction or
//!   in-processing, and
//! * a final `Add` per UNSAT answer — the empty clause when the formula
//!   itself is contradictory, or the *negated unsat core*
//!   (`¬a₁ ∨ … ∨ ¬aₖ` over the failed assumptions) when the answer was
//!   conditional on assumptions. Either way the final lemma is RUP with
//!   respect to the formula plus the surviving learnt clauses, so one
//!   proof format covers both flavours of "no".
//!
//! [`check_drat`] is a *backward* checker with core marking: it replays
//! the proof forward only to resolve which clause instance each
//! deletion refers to, then walks the proof backwards, verifying a
//! lemma only if some later verified lemma (or the final one) used it
//! as a propagation antecedent. On the incremental workloads here most
//! learnt clauses never feed the final conflict, so backward checking
//! verifies a small core of the proof instead of all of it;
//! [`CheckMode::All`] forces every addition to be verified.
//!
//! Deletions that name a clause not currently active are skipped, like
//! `drat-trim` does: the solver deletes its *simplified* form of a
//! clause while the formula holds the original, and ignoring the
//! mismatch only leaves more clauses active, which can never turn an
//! invalid proof valid.

use std::fmt;
use std::io::{self, Write};

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};

/// One line of a DRAT proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// A learnt (or strengthened) clause: must be RUP with respect to
    /// everything active before it.
    Add(Vec<Lit>),
    /// A clause the solver discarded; removing clauses is always sound.
    Delete(Vec<Lit>),
}

/// Which additions [`check_drat`] must verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Verify the final `Add` (the UNSAT lemma) and, transitively, every
    /// addition it depends on — the backward-checking default.
    Last,
    /// Verify every addition in the proof.
    All,
}

/// A verified proof's shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DratOutcome {
    /// Total steps in the proof.
    pub steps: usize,
    /// Clause additions.
    pub adds: usize,
    /// Clause deletions.
    pub deletes: usize,
    /// Additions actually RUP-verified (the marked core in
    /// [`CheckMode::Last`]; all of them in [`CheckMode::All`]).
    pub checked: usize,
}

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DratError {
    /// The proof contains no addition to verify.
    NoLemma,
    /// An addition is not RUP: assuming its literals false did not
    /// propagate to a conflict. The step index is into the proof.
    NotImplied { step: usize, clause: Vec<Lit> },
    /// The proof text could not be parsed.
    Parse { line: usize, message: String },
}

impl fmt::Display for DratError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DratError::NoLemma => write!(f, "proof contains no clause addition to verify"),
            DratError::NotImplied { step, clause } => {
                write!(f, "step {step}: clause not implied by unit propagation (")?;
                for (i, l) in clause.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{}", dimacs_lit(*l))?;
                }
                write!(f, ")")
            }
            DratError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for DratError {}

fn dimacs_lit(l: Lit) -> i64 {
    let v = l.var().index() as i64 + 1;
    if l.is_positive() {
        v
    } else {
        -v
    }
}

/// Writes a proof in the standard textual DRAT format: one step per
/// line, literals in DIMACS numbering, deletions prefixed `d`, every
/// line terminated by `0`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_drat<W: Write>(steps: &[ProofStep], mut w: W) -> io::Result<()> {
    let mut line = String::new();
    for step in steps {
        line.clear();
        let lits = match step {
            ProofStep::Add(lits) => lits,
            ProofStep::Delete(lits) => {
                line.push_str("d ");
                lits
            }
        };
        for &l in lits {
            line.push_str(&dimacs_lit(l).to_string());
            line.push(' ');
        }
        line.push_str("0\n");
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Parses a textual DRAT proof (the format [`write_drat`] emits;
/// comment lines starting with `c` are skipped).
///
/// # Errors
///
/// [`DratError::Parse`] with a 1-based line number on malformed input.
pub fn parse_drat(input: &[u8]) -> Result<Vec<ProofStep>, DratError> {
    let text = String::from_utf8_lossy(input);
    let mut steps = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let err = |message: &str| DratError::Parse {
            line: idx + 1,
            message: message.to_string(),
        };
        let (delete, body) = match line.strip_prefix('d') {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for tok in body.split_ascii_whitespace() {
            if terminated {
                return Err(err("literals after the terminating 0"));
            }
            let n: i64 = tok
                .parse()
                .map_err(|_| err(&format!("bad literal {tok:?}")))?;
            if n == 0 {
                terminated = true;
                continue;
            }
            let magnitude = n.unsigned_abs();
            if magnitude > u32::MAX as u64 / 2 {
                return Err(err(&format!("literal {n} out of range")));
            }
            let var = Var::from_index(magnitude as usize - 1);
            lits.push(Lit::new(var, n > 0));
        }
        if !terminated {
            return Err(err("missing terminating 0"));
        }
        steps.push(if delete {
            ProofStep::Delete(lits)
        } else {
            ProofStep::Add(lits)
        });
    }
    Ok(steps)
}

/// Truth value of a literal under the checker's partial assignment.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Undef,
    True,
    False,
}

/// One clause instance known to the checker: a formula clause or the
/// clause added by a specific proof step. Two steps adding equal
/// literals are distinct instances, matching DRAT's multiset semantics.
struct Instance {
    lits: Vec<Lit>,
    active: bool,
    /// Reachable from a verified lemma's propagation conflict — must
    /// itself be verified when the backward walk reaches it.
    marked: bool,
}

/// The backward checker's propagation state.
struct Checker {
    instances: Vec<Instance>,
    /// `occ[watch_index(l)]`: instances containing `l`, scanned when
    /// `¬l` becomes true.
    occ: Vec<Vec<usize>>,
    assign: Vec<Val>,
    trail: Vec<Lit>,
    /// Instance that implied each assigned variable (`None` for the
    /// assumed negations of the clause under test).
    reason: Vec<Option<usize>>,
    /// Active unit instances, seeded into every propagation.
    units: Vec<usize>,
    /// Active empty instances (an immediate conflict).
    empties: Vec<usize>,
}

impl Checker {
    fn new(num_vars: usize) -> Checker {
        Checker {
            instances: Vec::new(),
            occ: vec![Vec::new(); num_vars * 2],
            assign: vec![Val::Undef; num_vars],
            trail: Vec::new(),
            reason: vec![None; num_vars],
            units: Vec::new(),
            empties: Vec::new(),
        }
    }

    fn add_instance(&mut self, mut lits: Vec<Lit>) -> usize {
        // Store clauses deduplicated: a repeated literal would otherwise
        // read as two open literals and silently block unit propagation.
        // (Formula clauses arrive verbatim from the clause log, which
        // records them before the solver's own dedup.)
        lits.sort_unstable();
        lits.dedup();
        let id = self.instances.len();
        for &l in &lits {
            self.occ[l.watch_index()].push(id);
        }
        match lits.len() {
            0 => self.empties.push(id),
            1 => self.units.push(id),
            _ => {}
        }
        self.instances.push(Instance {
            lits,
            active: true,
            marked: false,
        });
        id
    }

    fn set_active(&mut self, id: usize, active: bool) {
        self.instances[id].active = active;
        match self.instances[id].lits.len() {
            0 => {
                if active {
                    self.empties.push(id);
                } else {
                    self.empties.retain(|&e| e != id);
                }
            }
            1 => {
                if active {
                    self.units.push(id);
                } else {
                    self.units.retain(|&u| u != id);
                }
            }
            _ => {}
        }
    }

    fn value(&self, l: Lit) -> Val {
        match self.assign[l.var().index()] {
            Val::Undef => Val::Undef,
            Val::True if l.is_positive() => Val::True,
            Val::False if l.is_negative() => Val::True,
            _ => Val::False,
        }
    }

    /// Assigns `l` true; returns the conflicting instance when `l` was
    /// already false (`from` doubles as the conflict's antecedent).
    fn enqueue(&mut self, l: Lit, from: Option<usize>) -> Option<usize> {
        match self.value(l) {
            Val::True => None,
            Val::False => from.or_else(|| {
                // A conflicting *assumption* (two negated literals of the
                // clause under test clash): impossible here, because the
                // solver never emits a tautological lemma, but fall back
                // to the falsifying reason for robustness.
                self.reason[l.var().index()]
            }),
            Val::Undef => {
                self.assign[l.var().index()] = if l.is_positive() {
                    Val::True
                } else {
                    Val::False
                };
                self.reason[l.var().index()] = from;
                self.trail.push(l);
                None
            }
        }
    }

    /// Exhaustive unit propagation over the active instances; returns
    /// the first conflicting instance, if any.
    fn propagate(&mut self, mut head: usize) -> Option<usize> {
        while head < self.trail.len() {
            let p = self.trail[head];
            head += 1;
            // Instances containing ¬p may have become unit.
            let watch = (!p).watch_index();
            for idx in 0..self.occ[watch].len() {
                let id = self.occ[watch][idx];
                if !self.instances[id].active {
                    continue;
                }
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                for i in 0..self.instances[id].lits.len() {
                    let l = self.instances[id].lits[i];
                    match self.value(l) {
                        Val::True => {
                            satisfied = true;
                            break;
                        }
                        Val::False => {}
                        Val::Undef => {
                            if unassigned.is_some() {
                                satisfied = true; // two open literals: not unit
                                break;
                            }
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned {
                    None => return Some(id),
                    Some(l) => {
                        if let Some(confl) = self.enqueue(l, Some(id)) {
                            return Some(confl);
                        }
                    }
                }
            }
        }
        None
    }

    /// RUP check of `clause` against the active instances. On success
    /// marks every instance on the reason chain of the derived conflict
    /// (the lemma's antecedents). Leaves the assignment empty again.
    fn rup(&mut self, clause: &[Lit]) -> bool {
        debug_assert!(self.trail.is_empty());
        // A tautology is satisfied by every assignment — always a valid
        // addition, with no antecedents to mark. (The solver's conflict
        // analysis never produces one, but an assumption core over a
        // variable assumed in both polarities is exactly `x ∨ ¬x`.)
        if clause.iter().any(|&l| clause.contains(&!l)) {
            return true;
        }
        let mut conflict = self.empties.first().copied();
        if conflict.is_none() {
            // Seed: active units, then the negated clause under test.
            for i in 0..self.units.len() {
                let id = self.units[i];
                let l = self.instances[id].lits[0];
                if let Some(c) = self.enqueue(l, Some(id)) {
                    conflict = Some(c);
                    break;
                }
            }
            if conflict.is_none() {
                for &l in clause {
                    if let Some(c) = self.enqueue(!l, None) {
                        conflict = Some(c);
                        break;
                    }
                }
            }
            if conflict.is_none() {
                conflict = self.propagate(0);
            }
        }
        let Some(confl) = conflict else {
            for &l in &self.trail {
                self.assign[l.var().index()] = Val::Undef;
                self.reason[l.var().index()] = None;
            }
            self.trail.clear();
            return false;
        };
        // Mark antecedents: the conflict instance plus, walking the
        // trail backwards, the reason of every variable the conflict
        // traces through.
        self.instances[confl].marked = true;
        let mut involved = vec![false; self.assign.len()];
        for &l in &self.instances[confl].lits {
            involved[l.var().index()] = true;
        }
        for i in (0..self.trail.len()).rev() {
            let v = self.trail[i].var();
            if involved[v.index()] {
                if let Some(r) = self.reason[v.index()] {
                    self.instances[r].marked = true;
                    for &l in &self.instances[r].lits {
                        involved[l.var().index()] = true;
                    }
                }
            }
            self.assign[v.index()] = Val::Undef;
            self.reason[v.index()] = None;
        }
        self.trail.clear();
        true
    }
}

/// Checks a DRAT proof against a formula.
///
/// Runs a forward replay (to bind each deletion to the most recent
/// matching active instance), then the backward verification pass: the
/// final lemma — and in [`CheckMode::Last`] exactly the additions its
/// propagation conflicts transitively depend on — must each be RUP with
/// respect to the formula and the proof prefix active at that point.
///
/// # Errors
///
/// [`DratError::NoLemma`] when the proof adds nothing, and
/// [`DratError::NotImplied`] when a checked addition does not follow by
/// unit propagation.
pub fn check_drat(
    cnf: &Cnf,
    steps: &[ProofStep],
    mode: CheckMode,
) -> Result<DratOutcome, DratError> {
    let mut num_vars = cnf.num_vars();
    for step in steps {
        let (ProofStep::Add(lits) | ProofStep::Delete(lits)) = step;
        for l in lits {
            num_vars = num_vars.max(l.var().index() + 1);
        }
    }
    let mut checker = Checker::new(num_vars);
    for clause in cnf.clauses() {
        checker.add_instance(clause.to_vec());
    }

    // Forward replay: create instances for additions, bind deletions to
    // the most recent active instance with the same literal multiset.
    use std::collections::HashMap;
    let mut active_by_key: HashMap<Vec<Lit>, Vec<usize>> = HashMap::new();
    let key_of = |lits: &[Lit]| {
        let mut k = lits.to_vec();
        k.sort_unstable();
        k
    };
    for (id, inst) in checker.instances.iter().enumerate() {
        active_by_key
            .entry(key_of(&inst.lits))
            .or_default()
            .push(id);
    }
    let mut adds = 0usize;
    let mut deletes = 0usize;
    // Per step: `Ok(id)` for an addition's instance, `Err(Some(id))`
    // for a resolved deletion, `Err(None)` for an ignored one.
    let mut step_instance: Vec<Result<usize, Option<usize>>> = Vec::with_capacity(steps.len());
    for step in steps {
        match step {
            ProofStep::Add(lits) => {
                adds += 1;
                let id = checker.add_instance(lits.clone());
                active_by_key.entry(key_of(lits)).or_default().push(id);
                step_instance.push(Ok(id));
            }
            ProofStep::Delete(lits) => {
                deletes += 1;
                let resolved = active_by_key
                    .get_mut(&key_of(lits))
                    .and_then(|stack| stack.pop());
                if let Some(id) = resolved {
                    checker.set_active(id, false);
                }
                step_instance.push(Err(resolved));
            }
        }
    }
    if adds == 0 {
        return Err(DratError::NoLemma);
    }

    // Backward pass.
    let mut checked = 0usize;
    let mut target_seen = false;
    for step_idx in (0..steps.len()).rev() {
        match &step_instance[step_idx] {
            Err(Some(id)) => checker.set_active(*id, true),
            Err(None) => {}
            Ok(id) => {
                let id = *id;
                checker.set_active(id, false);
                let must_check = match mode {
                    CheckMode::All => true,
                    // The last addition is the lemma under certification.
                    CheckMode::Last => !target_seen || checker.instances[id].marked,
                };
                target_seen = true;
                if must_check {
                    let clause = checker.instances[id].lits.clone();
                    if !checker.rup(&clause) {
                        return Err(DratError::NotImplied {
                            step: step_idx,
                            clause,
                        });
                    }
                    checked += 1;
                }
            }
        }
    }
    Ok(DratOutcome {
        steps: steps.len(),
        adds,
        deletes,
        checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::new(Var::from_index(n.unsigned_abs() as usize - 1), n > 0)
    }

    fn clause(ns: &[i64]) -> Vec<Lit> {
        ns.iter().map(|&n| lit(n)).collect()
    }

    /// The classic 8-clause unsatisfiable 2-out-of-3 example used by
    /// the drat-trim documentation.
    fn tiny_unsat() -> Cnf {
        let mut cnf = Cnf::new();
        cnf.reserve_vars(3);
        for c in [
            [1, 2, -3],
            [-1, -2, 3],
            [2, 3, -1],
            [-2, -3, 1],
            [1, 3, -2],
            [-1, -3, 2],
            [1, 2, 3],
            [-1, -2, -3],
        ] {
            cnf.add_clause(clause(&c));
        }
        cnf
    }

    #[test]
    fn verifies_a_hand_written_refutation() {
        let cnf = tiny_unsat();
        let steps = vec![
            ProofStep::Add(clause(&[1, 2])),
            ProofStep::Add(clause(&[1])),
            ProofStep::Add(clause(&[2])),
            ProofStep::Add(vec![]),
        ];
        let out = check_drat(&cnf, &steps, CheckMode::All).expect("valid proof");
        assert_eq!(out.adds, 4);
        assert_eq!(out.checked, 4);
        let out = check_drat(&cnf, &steps, CheckMode::Last).expect("valid proof");
        assert!(out.checked >= 1, "the final lemma is always checked");
    }

    #[test]
    fn rejects_a_bogus_lemma() {
        let mut cnf = Cnf::new();
        cnf.reserve_vars(2);
        cnf.add_clause(clause(&[1, 2]));
        let steps = vec![ProofStep::Add(clause(&[1]))];
        let err = check_drat(&cnf, &steps, CheckMode::Last).unwrap_err();
        match err {
            DratError::NotImplied { step: 0, .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn deletion_of_a_needed_clause_breaks_the_proof() {
        let cnf = tiny_unsat();
        // Valid refutation, except every original clause is deleted
        // before the lemmas that need them.
        let mut steps: Vec<ProofStep> = tiny_unsat()
            .clauses()
            .map(|c| ProofStep::Delete(c.to_vec()))
            .collect();
        steps.push(ProofStep::Add(clause(&[1, 2])));
        steps.push(ProofStep::Add(vec![]));
        assert!(check_drat(&cnf, &steps, CheckMode::Last).is_err());
    }

    #[test]
    fn unmatched_deletions_are_ignored() {
        let cnf = tiny_unsat();
        let steps = vec![
            ProofStep::Delete(clause(&[1, 2, 3, -3])), // no such clause
            ProofStep::Add(clause(&[1, 2])),
            ProofStep::Add(clause(&[1])),
            ProofStep::Add(clause(&[2])),
            ProofStep::Add(vec![]),
        ];
        check_drat(&cnf, &steps, CheckMode::All).expect("still valid");
    }

    #[test]
    fn assumption_core_lemma_without_empty_clause() {
        // x1 → x2, x2 → x3; core of assuming x1 ∧ ¬x3 is (¬x1 ∨ x3).
        let mut cnf = Cnf::new();
        cnf.reserve_vars(3);
        cnf.add_clause(clause(&[-1, 2]));
        cnf.add_clause(clause(&[-2, 3]));
        let steps = vec![ProofStep::Add(clause(&[-1, 3]))];
        let out = check_drat(&cnf, &steps, CheckMode::Last).expect("core clause is RUP");
        assert_eq!(out.checked, 1);
    }

    #[test]
    fn empty_proof_has_no_lemma() {
        assert_eq!(
            check_drat(&Cnf::new(), &[], CheckMode::Last),
            Err(DratError::NoLemma)
        );
    }

    #[test]
    fn empty_formula_clause_conflicts_immediately() {
        let mut cnf = Cnf::new();
        cnf.add_clause(clause(&[]));
        let steps = vec![ProofStep::Add(vec![])];
        check_drat(&cnf, &steps, CheckMode::Last).expect("empty clause in formula");
    }

    #[test]
    fn proof_text_round_trips() {
        let steps = vec![
            ProofStep::Add(clause(&[1, -2, 3])),
            ProofStep::Delete(clause(&[-1, 2])),
            ProofStep::Add(vec![]),
        ];
        let mut buf = Vec::new();
        write_drat(&steps, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text, "1 -2 3 0\nd -1 2 0\n0\n");
        assert_eq!(parse_drat(&buf).unwrap(), steps);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = parse_drat(b"1 2 0\nx y z\n").unwrap_err();
        match err {
            DratError::Parse { line: 2, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let err = parse_drat(b"1 2\n").unwrap_err();
        assert!(matches!(err, DratError::Parse { line: 1, .. }));
    }

    #[test]
    fn comments_are_skipped() {
        let steps = parse_drat(b"c a comment\n1 0\n").unwrap();
        assert_eq!(steps, vec![ProofStep::Add(clause(&[1]))]);
    }

    #[test]
    fn backward_mode_skips_unused_lemmas() {
        let cnf = tiny_unsat();
        let steps = vec![
            // A true but irrelevant lemma (RUP, but feeds nothing).
            ProofStep::Add(clause(&[1, 2])),
            ProofStep::Add(clause(&[2, 3])),
            ProofStep::Add(clause(&[1, 3])),
            ProofStep::Add(clause(&[1])),
            ProofStep::Add(clause(&[2])),
            ProofStep::Add(vec![]),
        ];
        let all = check_drat(&cnf, &steps, CheckMode::All).unwrap();
        assert_eq!(all.checked, 6);
        let last = check_drat(&cnf, &steps, CheckMode::Last).unwrap();
        assert!(
            last.checked < all.checked,
            "backward checking must skip the unused lemma ({} vs {})",
            last.checked,
            all.checked
        );
    }
}

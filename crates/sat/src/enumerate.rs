//! All-SAT model enumeration.
//!
//! The feature-model analyses (§II-B of the paper: "generation of all
//! valid products", product counting) need every model of a formula, not
//! just one. [`ModelIter`] yields models by repeatedly solving and adding
//! a *blocking clause* over a designated set of relevant variables, so
//! models differing only in auxiliary (Tseitin) variables are reported
//! once.

use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};

/// How a bounded enumeration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumOutcome {
    /// Every projected model was seen; the count is exact.
    Exhausted,
    /// The cap was reached with at least one further model remaining;
    /// the count is a lower bound.
    Truncated,
}

/// Result of [`ModelIter::count_up_to`]: how many projected models were
/// found and whether the enumeration ran to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedCount {
    /// Distinct projected models found (at most the cap).
    pub models: u64,
    /// Whether `models` is exact or a truncated lower bound.
    pub outcome: EnumOutcome,
}

impl BoundedCount {
    /// True when the enumeration exhausted the model space, i.e.
    /// [`BoundedCount::models`] is the exact projected model count.
    pub fn is_exact(&self) -> bool {
        self.outcome == EnumOutcome::Exhausted
    }
}

/// Iterator over the models of a solver, projected onto a variable set.
///
/// Created by [`ModelIter::new`] (or [`ModelIter::projected`], which
/// additionally accepts an empty projection). Each yielded item is the
/// projection of a model onto the relevant variables, in the order
/// given. The solver is mutated: blocking clauses accumulate, so the
/// solver is effectively consumed for other purposes.
///
/// ```
/// use llhsc_sat::{Solver, Lit, ModelIter};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([Lit::pos(a), Lit::pos(b)]);
/// let models: Vec<_> = ModelIter::new(&mut s, vec![a, b]).collect();
/// assert_eq!(models.len(), 3); // TT, TF, FT
/// ```
#[derive(Debug)]
pub struct ModelIter<'a> {
    solver: &'a mut Solver,
    relevant: Vec<Var>,
    exhausted: bool,
}

impl<'a> ModelIter<'a> {
    /// Starts enumeration over `relevant` variables.
    ///
    /// # Panics
    ///
    /// Panics if `relevant` is empty — a projection onto nothing would
    /// yield at most one (empty) model and is almost certainly a bug in
    /// the caller.
    pub fn new(solver: &'a mut Solver, relevant: Vec<Var>) -> ModelIter<'a> {
        assert!(
            !relevant.is_empty(),
            "model enumeration needs at least one relevant variable"
        );
        ModelIter::projected(solver, relevant)
    }

    /// Starts enumeration over `relevant` variables, accepting an empty
    /// projection.
    ///
    /// Unlike [`ModelIter::new`] this never panics: projecting onto
    /// nothing yields exactly one (empty) model when the formula is
    /// satisfiable and zero otherwise, which is the convention counting
    /// code relies on (an empty product of domains is 1).
    pub fn projected(solver: &'a mut Solver, relevant: Vec<Var>) -> ModelIter<'a> {
        ModelIter {
            solver,
            relevant,
            exhausted: false,
        }
    }

    /// Counts models up to `cap`, reporting whether the space was
    /// exhausted.
    ///
    /// Performs at most `cap + 1` solver calls: after `cap` models have
    /// been found, one extra solve distinguishes an exact count of `cap`
    /// ([`EnumOutcome::Exhausted`]) from a truncated lower bound
    /// ([`EnumOutcome::Truncated`]).
    pub fn count_up_to(mut self, cap: u64) -> BoundedCount {
        let mut models = 0u64;
        while models < cap {
            if self.next().is_none() {
                return BoundedCount {
                    models,
                    outcome: EnumOutcome::Exhausted,
                };
            }
            models += 1;
        }
        let outcome = if self.next().is_none() {
            EnumOutcome::Exhausted
        } else {
            EnumOutcome::Truncated
        };
        BoundedCount { models, outcome }
    }
}

impl Iterator for ModelIter<'_> {
    /// One projected model: `(variable, value)` pairs in `relevant` order.
    type Item = Vec<(Var, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.exhausted {
            return None;
        }
        match self.solver.solve() {
            SolveResult::Unsat => {
                self.exhausted = true;
                None
            }
            SolveResult::Sat => {
                let model: Vec<(Var, bool)> = self
                    .relevant
                    .iter()
                    .map(|&v| {
                        (
                            v,
                            self.solver
                                .value(v)
                                .expect("relevant var assigned in model"),
                        )
                    })
                    .collect();
                // Block this projection.
                let blocking: Vec<Lit> = model.iter().map(|&(v, val)| Lit::new(v, !val)).collect();
                if !self.solver.add_clause(blocking) {
                    self.exhausted = true;
                }
                Some(model)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_projections() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // No constraints on a, b; c is forced true.
        s.add_clause([Lit::pos(c)]);
        let models: Vec<_> = ModelIter::new(&mut s, vec![a, b]).collect();
        assert_eq!(models.len(), 4);
        let mut keys: Vec<(bool, bool)> = models.iter().map(|m| (m[0].1, m[1].1)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4, "projections must be distinct");
    }

    #[test]
    fn unsat_yields_nothing() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        s.add_clause([Lit::neg(a)]);
        assert_eq!(ModelIter::new(&mut s, vec![a]).count(), 0);
    }

    #[test]
    fn projection_hides_aux_vars() {
        let mut s = Solver::new();
        let a = s.new_var();
        let _aux = s.new_var(); // free auxiliary variable
        s.add_clause([Lit::pos(a)]);
        // Without projection there would be 2 models; with it, 1.
        assert_eq!(ModelIter::new(&mut s, vec![a]).count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one relevant variable")]
    fn empty_projection_panics() {
        let mut s = Solver::new();
        let _ = s.new_var();
        let _ = ModelIter::new(&mut s, vec![]);
    }

    #[test]
    fn empty_projection_yields_one_model_when_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        let models: Vec<_> = ModelIter::projected(&mut s, vec![]).collect();
        assert_eq!(models, vec![vec![]]);
    }

    #[test]
    fn empty_projection_yields_nothing_when_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        s.add_clause([Lit::neg(a)]);
        assert_eq!(ModelIter::projected(&mut s, vec![]).count(), 0);
    }

    #[test]
    fn bounded_count_replaces_unbounded_counting() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        let n = ModelIter::new(&mut s, vec![a]).count_up_to(8);
        assert_eq!(n.models, 1);
        assert_eq!(n.outcome, EnumOutcome::Exhausted);
    }

    #[test]
    fn xor_has_two_models() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(a), Lit::neg(b)]);
        assert_eq!(ModelIter::new(&mut s, vec![a, b]).count(), 2);
    }

    #[test]
    fn count_up_to_reports_exhausted_below_cap() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        let bc = ModelIter::new(&mut s, vec![a, b]).count_up_to(10);
        assert_eq!(bc.models, 3);
        assert!(bc.is_exact());
    }

    #[test]
    fn count_up_to_reports_exhausted_exactly_at_cap() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        let bc = ModelIter::new(&mut s, vec![a, b]).count_up_to(3);
        assert_eq!(bc.models, 3);
        assert_eq!(bc.outcome, EnumOutcome::Exhausted);
    }

    #[test]
    fn count_up_to_truncates_over_cap() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        let bc = ModelIter::new(&mut s, vec![a, b]).count_up_to(2);
        assert_eq!(bc.models, 2);
        assert_eq!(bc.outcome, EnumOutcome::Truncated);
        assert!(!bc.is_exact());
    }

    #[test]
    fn count_up_to_zero_cap_detects_any_model() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        let bc = ModelIter::new(&mut s, vec![a]).count_up_to(0);
        assert_eq!(bc.models, 0);
        assert_eq!(bc.outcome, EnumOutcome::Truncated);
    }
}

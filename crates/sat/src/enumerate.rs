//! All-SAT model enumeration.
//!
//! The feature-model analyses (§II-B of the paper: "generation of all
//! valid products", product counting) need every model of a formula, not
//! just one. [`ModelIter`] yields models by repeatedly solving and adding
//! a *blocking clause* over a designated set of relevant variables, so
//! models differing only in auxiliary (Tseitin) variables are reported
//! once.

use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};

/// Iterator over the models of a solver, projected onto a variable set.
///
/// Created by [`ModelIter::new`]. Each yielded item is the projection of
/// a model onto the relevant variables, in the order given. The solver is
/// mutated: blocking clauses accumulate, so the solver is effectively
/// consumed for other purposes.
///
/// ```
/// use llhsc_sat::{Solver, Lit, ModelIter};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([Lit::pos(a), Lit::pos(b)]);
/// let models: Vec<_> = ModelIter::new(&mut s, vec![a, b]).collect();
/// assert_eq!(models.len(), 3); // TT, TF, FT
/// ```
#[derive(Debug)]
pub struct ModelIter<'a> {
    solver: &'a mut Solver,
    relevant: Vec<Var>,
    exhausted: bool,
}

impl<'a> ModelIter<'a> {
    /// Starts enumeration over `relevant` variables.
    ///
    /// # Panics
    ///
    /// Panics if `relevant` is empty — a projection onto nothing would
    /// yield at most one (empty) model and is almost certainly a bug in
    /// the caller.
    pub fn new(solver: &'a mut Solver, relevant: Vec<Var>) -> ModelIter<'a> {
        assert!(
            !relevant.is_empty(),
            "model enumeration needs at least one relevant variable"
        );
        ModelIter {
            solver,
            relevant,
            exhausted: false,
        }
    }

    /// Counts remaining models without materialising them.
    pub fn count_models(self) -> usize {
        self.count()
    }
}

impl Iterator for ModelIter<'_> {
    /// One projected model: `(variable, value)` pairs in `relevant` order.
    type Item = Vec<(Var, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.exhausted {
            return None;
        }
        match self.solver.solve() {
            SolveResult::Unsat => {
                self.exhausted = true;
                None
            }
            SolveResult::Sat => {
                let model: Vec<(Var, bool)> = self
                    .relevant
                    .iter()
                    .map(|&v| {
                        (
                            v,
                            self.solver
                                .value(v)
                                .expect("relevant var assigned in model"),
                        )
                    })
                    .collect();
                // Block this projection.
                let blocking: Vec<Lit> = model.iter().map(|&(v, val)| Lit::new(v, !val)).collect();
                if !self.solver.add_clause(blocking) {
                    self.exhausted = true;
                }
                Some(model)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_projections() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // No constraints on a, b; c is forced true.
        s.add_clause([Lit::pos(c)]);
        let models: Vec<_> = ModelIter::new(&mut s, vec![a, b]).collect();
        assert_eq!(models.len(), 4);
        let mut keys: Vec<(bool, bool)> = models.iter().map(|m| (m[0].1, m[1].1)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4, "projections must be distinct");
    }

    #[test]
    fn unsat_yields_nothing() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        s.add_clause([Lit::neg(a)]);
        assert_eq!(ModelIter::new(&mut s, vec![a]).count_models(), 0);
    }

    #[test]
    fn projection_hides_aux_vars() {
        let mut s = Solver::new();
        let a = s.new_var();
        let _aux = s.new_var(); // free auxiliary variable
        s.add_clause([Lit::pos(a)]);
        // Without projection there would be 2 models; with it, 1.
        assert_eq!(ModelIter::new(&mut s, vec![a]).count_models(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one relevant variable")]
    fn empty_projection_panics() {
        let mut s = Solver::new();
        let _ = s.new_var();
        let _ = ModelIter::new(&mut s, vec![]);
    }

    #[test]
    fn xor_has_two_models() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(a), Lit::neg(b)]);
        assert_eq!(ModelIter::new(&mut s, vec![a, b]).count_models(), 2);
    }
}

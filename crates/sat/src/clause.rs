//! Clause storage.
//!
//! Clauses live in a single flat literal arena (`ClauseDb`): one shared
//! `Vec<Lit>` holds every clause's literals back to back, and a compact
//! header per clause records its `(offset, len)` slice plus the
//! reduction metadata (activity, LBD, learnt/deleted flags). Compared
//! with one heap allocation per clause this keeps unit propagation on
//! hot cache lines and makes clause allocation a bump append.
//!
//! Deletion only marks the header and counts the slice as wasted; the
//! arena is compacted by [`ClauseDb::compact`] during learnt-database
//! reductions once enough of it is garbage. Compaction renumbers
//! clauses, so the solver rewrites its watcher lists and reason
//! references through the returned [`CompactMap`].

use crate::lit::Lit;

/// Handle to a clause inside the solver's clause database.
///
/// Invalidated by [`ClauseDb::compact`]; the solver remaps every live
/// handle (watchers, reasons) through the [`CompactMap`] it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-clause header; the literals live in the shared arena.
#[derive(Debug, Clone, Copy)]
struct Header {
    /// Offset of the first literal in the arena.
    off: u32,
    /// Number of literals.
    len: u32,
    /// Activity for learnt-clause reduction.
    activity: f64,
    /// Literal-block distance at learning time (Glucose-style quality).
    lbd: u32,
    /// Learnt clauses may be removed during DB reduction.
    learnt: bool,
    /// Marked for deletion by the reducer; swept by `compact`.
    deleted: bool,
}

/// The flat clause arena.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    /// Every clause's literals, back to back.
    arena: Vec<Lit>,
    headers: Vec<Header>,
    /// Number of live learnt clauses (excludes deleted).
    num_learnt: usize,
    /// Number of live problem clauses.
    num_problem: usize,
    /// Arena slots owned by deleted clauses, reclaimable by `compact`.
    wasted: usize,
    /// Lifetime clause allocations (never decremented).
    allocated_clauses: u64,
    /// Lifetime literal slots appended to the arena (never decremented).
    allocated_lits: u64,
}

/// Old-to-new [`ClauseRef`] mapping produced by [`ClauseDb::compact`].
#[derive(Debug)]
pub(crate) struct CompactMap {
    map: Vec<u32>,
}

impl CompactMap {
    const DEAD: u32 = u32::MAX;

    /// The post-compaction handle for `cref`, or `None` if the clause
    /// was deleted.
    #[inline]
    pub(crate) fn remap(&self, cref: ClauseRef) -> Option<ClauseRef> {
        match self.map[cref.index()] {
            Self::DEAD => None,
            new => Some(ClauseRef(new)),
        }
    }
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses never enter the db");
        let idx = self.headers.len() as u32;
        let off = self.arena.len() as u32;
        self.arena.extend_from_slice(lits);
        self.headers.push(Header {
            off,
            len: lits.len() as u32,
            activity: 0.0,
            lbd,
            learnt,
            deleted: false,
        });
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        self.allocated_clauses += 1;
        self.allocated_lits += lits.len() as u64;
        ClauseRef(idx)
    }

    #[inline]
    pub(crate) fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let h = &self.headers[cref.index()];
        &self.arena[h.off as usize..(h.off + h.len) as usize]
    }

    #[inline]
    pub(crate) fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let h = &self.headers[cref.index()];
        &mut self.arena[h.off as usize..(h.off + h.len) as usize]
    }

    #[inline]
    pub(crate) fn len(&self, cref: ClauseRef) -> usize {
        self.headers[cref.index()].len as usize
    }

    #[inline]
    pub(crate) fn lbd(&self, cref: ClauseRef) -> u32 {
        self.headers[cref.index()].lbd
    }

    #[inline]
    pub(crate) fn activity(&self, cref: ClauseRef) -> f64 {
        self.headers[cref.index()].activity
    }

    #[inline]
    pub(crate) fn bump_activity(&mut self, cref: ClauseRef, inc: f64) -> f64 {
        let h = &mut self.headers[cref.index()];
        h.activity += inc;
        h.activity
    }

    #[inline]
    pub(crate) fn scale_activity(&mut self, cref: ClauseRef, factor: f64) {
        self.headers[cref.index()].activity *= factor;
    }

    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.headers[cref.index()];
        debug_assert!(!c.deleted);
        c.deleted = true;
        if c.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
        self.wasted += c.len as usize;
    }

    pub(crate) fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    pub(crate) fn num_problem(&self) -> usize {
        self.num_problem
    }

    /// Lifetime allocation counters `(clauses, literal slots)` — the
    /// total ever appended, ignoring deletions and compaction. The
    /// session layer compares these across solving modes.
    pub(crate) fn lifetime_allocs(&self) -> (u64, u64) {
        (self.allocated_clauses, self.allocated_lits)
    }

    /// `true` once at least half the arena is garbage and compacting is
    /// worth the renumbering pass.
    pub(crate) fn needs_compaction(&self) -> bool {
        self.wasted * 2 > self.arena.len() && self.wasted > 1024
    }

    /// Slides every live clause to the front of the arena, drops
    /// deleted headers and returns the old-to-new handle mapping. The
    /// caller must remap every stored [`ClauseRef`] (watchers,
    /// reasons); stale handles index the wrong clause afterwards.
    pub(crate) fn compact(&mut self) -> CompactMap {
        let mut map = vec![CompactMap::DEAD; self.headers.len()];
        let mut new_headers: Vec<Header> = Vec::with_capacity(self.headers.len());
        let mut write = 0usize;
        for (old, h) in self.headers.iter().enumerate() {
            if h.deleted {
                continue;
            }
            let (off, len) = (h.off as usize, h.len as usize);
            self.arena.copy_within(off..off + len, write);
            map[old] = new_headers.len() as u32;
            new_headers.push(Header {
                off: write as u32,
                ..*h
            });
            write += len;
        }
        self.arena.truncate(write);
        self.headers = new_headers;
        self.wasted = 0;
        CompactMap { map }
    }

    /// Iterates over live learnt clause refs.
    pub(crate) fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.headers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }
}

/// Aggregate clause statistics, exposed through
/// [`SolverStats`](crate::SolverStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClauseStats {
    /// Live problem (original) clauses.
    pub problem: usize,
    /// Live learnt clauses.
    pub learnt: usize,
}

impl ClauseDb {
    pub(crate) fn stats(&self) -> ClauseStats {
        ClauseStats {
            problem: self.num_problem,
            learnt: self.num_learnt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Lit::pos(Var::from_index(i))).collect()
    }

    #[test]
    fn alloc_and_get() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(3), false, 0);
        assert_eq!(db.lits(c).len(), 3);
        assert_eq!(db.len(c), 3);
        assert_eq!(db.num_problem(), 1);
        assert_eq!(db.num_learnt(), 0);
        assert_eq!(db.lifetime_allocs(), (1, 3));
    }

    #[test]
    fn delete_updates_counts() {
        let mut db = ClauseDb::new();
        let p = db.alloc(&lits(2), false, 0);
        let l = db.alloc(&lits(2), true, 2);
        assert_eq!(
            db.stats(),
            ClauseStats {
                problem: 1,
                learnt: 1
            }
        );
        db.delete(l);
        assert_eq!(
            db.stats(),
            ClauseStats {
                problem: 1,
                learnt: 0
            }
        );
        db.delete(p);
        assert_eq!(
            db.stats(),
            ClauseStats {
                problem: 0,
                learnt: 0
            }
        );
        // Lifetime counters never shrink.
        assert_eq!(db.lifetime_allocs(), (2, 4));
    }

    #[test]
    fn learnt_refs_skips_deleted() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(2), true, 2);
        let b = db.alloc(&lits(2), true, 2);
        db.delete(a);
        let live: Vec<_> = db.learnt_refs().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn clauses_are_contiguous_in_the_arena() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(3), false, 0);
        let b = db.alloc(&lits(2), false, 0);
        // Back-to-back layout: b's slice starts where a's ends.
        assert_eq!(
            db.lits(a).as_ptr() as usize + 3 * std::mem::size_of::<Lit>(),
            db.lits(b).as_ptr() as usize
        );
    }

    #[test]
    fn compact_moves_survivors_and_remaps() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(4), false, 0);
        let b = db.alloc(&lits(3), true, 2);
        let c = db.alloc(&lits(2), true, 1);
        let b_lits: Vec<Lit> = db.lits(b).to_vec();
        let c_lits: Vec<Lit> = db.lits(c).to_vec();
        db.delete(a);
        let map = db.compact();
        assert_eq!(map.remap(a), None);
        let nb = map.remap(b).unwrap();
        let nc = map.remap(c).unwrap();
        assert_eq!(db.lits(nb), b_lits.as_slice());
        assert_eq!(db.lits(nc), c_lits.as_slice());
        assert_eq!(db.stats().learnt, 2);
        assert_eq!(db.stats().problem, 0);
        // The freed front slots are gone: b now starts at offset 0.
        assert_eq!(db.lits(nb).as_ptr(), db.lits(ClauseRef(0)).as_ptr());
    }

    #[test]
    fn compaction_threshold_tracks_waste() {
        let mut db = ClauseDb::new();
        let mut refs = Vec::new();
        for _ in 0..600 {
            refs.push(db.alloc(&lits(2), true, 2));
        }
        assert!(!db.needs_compaction());
        for &r in &refs {
            db.delete(r);
        }
        assert!(db.needs_compaction());
        db.compact();
        assert!(!db.needs_compaction());
    }
}

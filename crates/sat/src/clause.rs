//! Clause storage.
//!
//! Clauses live in a single arena (`ClauseDb`) and are referred to by
//! [`ClauseRef`] handles. The arena supports in-place garbage collection
//! during learnt-clause database reductions.

use crate::lit::Lit;

/// Handle to a clause inside the solver's clause database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// Header + literal storage for one clause.
#[derive(Debug, Clone)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    /// Activity for learnt-clause reduction.
    pub(crate) activity: f64,
    /// Learnt clauses may be removed during DB reduction.
    pub(crate) learnt: bool,
    /// Marked for deletion by the reducer; swept lazily.
    pub(crate) deleted: bool,
    /// Literal-block distance at learning time (Glucose-style quality).
    pub(crate) lbd: u32,
}

/// The clause arena.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    /// Number of live learnt clauses (excludes deleted).
    num_learnt: usize,
    /// Number of live problem clauses.
    num_problem: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    pub(crate) fn alloc(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses never enter the db");
        let idx = self.clauses.len() as u32;
        self.clauses.push(Clause {
            lits,
            activity: 0.0,
            learnt,
            deleted: false,
            lbd,
        });
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_problem += 1;
        }
        ClauseRef(idx)
    }

    #[inline]
    pub(crate) fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.0 as usize]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.0 as usize]
    }

    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        debug_assert!(!c.deleted);
        c.deleted = true;
        if c.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_problem -= 1;
        }
        // Free the literal storage eagerly; the header slot is reused only
        // implicitly (refs to it must no longer be followed).
        c.lits = Vec::new();
    }

    pub(crate) fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    pub(crate) fn num_problem(&self) -> usize {
        self.num_problem
    }

    /// Iterates over live learnt clause refs.
    pub(crate) fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }
}

/// Aggregate clause statistics, exposed through
/// [`SolverStats`](crate::SolverStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClauseStats {
    /// Live problem (original) clauses.
    pub problem: usize,
    /// Live learnt clauses.
    pub learnt: usize,
}

impl ClauseDb {
    pub(crate) fn stats(&self) -> ClauseStats {
        ClauseStats {
            problem: self.num_problem,
            learnt: self.num_learnt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Lit::pos(Var::from_index(i))).collect()
    }

    #[test]
    fn alloc_and_get() {
        let mut db = ClauseDb::new();
        let c = db.alloc(lits(3), false, 0);
        assert_eq!(db.get(c).lits.len(), 3);
        assert!(!db.get(c).learnt);
        assert_eq!(db.num_problem(), 1);
        assert_eq!(db.num_learnt(), 0);
    }

    #[test]
    fn delete_updates_counts() {
        let mut db = ClauseDb::new();
        let p = db.alloc(lits(2), false, 0);
        let l = db.alloc(lits(2), true, 2);
        assert_eq!(
            db.stats(),
            ClauseStats {
                problem: 1,
                learnt: 1
            }
        );
        db.delete(l);
        assert_eq!(
            db.stats(),
            ClauseStats {
                problem: 1,
                learnt: 0
            }
        );
        db.delete(p);
        assert_eq!(
            db.stats(),
            ClauseStats {
                problem: 0,
                learnt: 0
            }
        );
    }

    #[test]
    fn learnt_refs_skips_deleted() {
        let mut db = ClauseDb::new();
        let a = db.alloc(lits(2), true, 2);
        let b = db.alloc(lits(2), true, 2);
        db.delete(a);
        let live: Vec<_> = db.learnt_refs().collect();
        assert_eq!(live, vec![b]);
    }
}

//! A plain CNF container, independent of any solver instance.
//!
//! [`Cnf`] is used wherever a formula is built before (or without) a
//! solver: the feature-model encoder produces a `Cnf`, the DIMACS codec
//! reads/writes one, and the benchmark harness generates random instances
//! into one.

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A conjunction of disjunctions of literals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Appends a clause. Variables mentioned by the literals are reserved
    /// automatically.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            self.reserve_vars(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Iterates over the clauses.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().map(|c| c.as_slice())
    }

    /// Loads the whole formula into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut s = Solver::new();
        self.load_into(&mut s);
        s
    }

    /// Loads the formula into an existing solver (variables are created
    /// as needed so that indices line up).
    pub fn load_into(&self, solver: &mut Solver) {
        solver.reserve_vars(self.num_vars);
        for c in &self.clauses {
            solver.add_clause(c.iter().copied());
        }
    }

    /// Evaluates the formula under a total assignment (indexed by
    /// variable index). Returns `None` if the assignment is too short.
    pub fn eval(&self, assignment: &[bool]) -> Option<bool> {
        if assignment.len() < self.num_vars {
            return None;
        }
        Some(self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        }))
    }
}

impl Extend<Vec<Lit>> for Cnf {
    fn extend<T: IntoIterator<Item = Vec<Lit>>>(&mut self, iter: T) {
        for c in iter {
            self.add_clause(c);
        }
    }
}

impl FromIterator<Vec<Lit>> for Cnf {
    fn from_iter<T: IntoIterator<Item = Vec<Lit>>>(iter: T) -> Cnf {
        let mut cnf = Cnf::new();
        cnf.extend(iter);
        cnf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn build_and_solve() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a)]);
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn clause_reserves_vars() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Lit::pos(Var::from_index(4))]);
        assert_eq!(cnf.num_vars(), 5);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn eval_total_assignment() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        assert_eq!(cnf.eval(&[false, true]), Some(true));
        assert_eq!(cnf.eval(&[true, false]), Some(false));
        assert_eq!(cnf.eval(&[true]), None);
    }

    #[test]
    fn from_iterator() {
        let a = Var::from_index(0);
        let cnf: Cnf = vec![vec![Lit::pos(a)], vec![Lit::neg(a)]]
            .into_iter()
            .collect();
        assert_eq!(cnf.num_clauses(), 2);
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}

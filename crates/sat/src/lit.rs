//! Variables and literals.

use std::fmt;
use std::num::NonZeroU32;

/// A propositional variable.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var) or
/// [`Cnf::new_var`](crate::Cnf::new_var) and are indices into the solver's
/// internal tables. The `Display` form is 1-based (DIMACS convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a 0-based index.
    ///
    /// Only meaningful for indices previously handed out by a solver or
    /// CNF builder; using a fabricated index with a solver that has fewer
    /// variables will panic inside the solver.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index overflows u32"))
    }

    /// The 0-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2*var + sign` in a single `u32` (the LSB is 1 for a negated
/// literal), the standard MiniSat encoding, so literals can index watch
/// lists directly. The all-ones pattern is reserved so `Option<Lit>`-like
/// sentinels stay cheap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(NonZeroU32);

// The encoding stores `2*var + sign + 1` in the NonZeroU32 so that the
// niche optimisation applies to Option<Lit>.
impl Lit {
    #[inline]
    fn from_code(code: u32) -> Lit {
        Lit(NonZeroU32::new(code + 1).expect("literal code overflow"))
    }

    #[inline]
    pub(crate) fn code(self) -> u32 {
        self.0.get() - 1
    }

    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit::from_code(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit::from_code((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign.
    ///
    /// `positive == true` yields the positive literal.
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.code() >> 1)
    }

    /// `true` if this is a positive (non-negated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.code() & 1 == 0
    }

    /// `true` if this is a negated literal.
    #[inline]
    pub fn is_negative(self) -> bool {
        !self.is_positive()
    }

    /// Index usable for watch lists (`2*var + sign`).
    #[inline]
    pub(crate) fn watch_index(self) -> usize {
        self.code() as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit::from_code(self.code() ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({self})")
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.var())
    }
}

/// A ternary assignment value used throughout the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The value of a literal whose variable has this value.
    #[inline]
    pub(crate) fn under(self, lit: Lit) -> LBool {
        match (self, lit.is_positive()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let v = Var::from_index(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::new(v, true), p);
        assert_eq!(Lit::new(v, false), n);
    }

    #[test]
    fn display_is_dimacs_like() {
        let v = Var::from_index(0);
        assert_eq!(Lit::pos(v).to_string(), "1");
        assert_eq!(Lit::neg(v).to_string(), "-1");
        assert_eq!(v.to_string(), "1");
    }

    #[test]
    fn option_lit_is_small() {
        assert_eq!(
            std::mem::size_of::<Option<Lit>>(),
            std::mem::size_of::<Lit>()
        );
    }

    #[test]
    fn lbool_under_literal() {
        let v = Var::from_index(3);
        assert_eq!(LBool::True.under(Lit::pos(v)), LBool::True);
        assert_eq!(LBool::True.under(Lit::neg(v)), LBool::False);
        assert_eq!(LBool::False.under(Lit::pos(v)), LBool::False);
        assert_eq!(LBool::False.under(Lit::neg(v)), LBool::True);
        assert_eq!(LBool::Undef.under(Lit::pos(v)), LBool::Undef);
    }

    #[test]
    fn ordering_groups_by_variable() {
        let a = Var::from_index(0);
        let b = Var::from_index(1);
        assert!(Lit::pos(a) < Lit::neg(a));
        assert!(Lit::neg(a) < Lit::pos(b));
    }
}

//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! This crate is the bottom layer of the `llhsc` reproduction. The paper
//! discharges all of its constraints — feature-model formulas, schema
//! constraints and bit-vector memory-consistency formulas — through the Z3
//! theorem prover, which (as the paper notes in §IV-C) decides the
//! bit-vector fragment by *bit-blasting into a SAT problem*. This solver
//! plays the role of that SAT back end.
//!
//! The implementation is a classic two-watched-literal CDCL solver with:
//!
//! * a flat literal arena for clause storage (one shared `Vec` instead
//!   of a heap allocation per clause) with garbage-collecting
//!   compaction, blocker literals in the watch lists and special-cased
//!   binary-clause watchers that propagate without touching the arena,
//! * first-UIP conflict analysis with recursive clause minimisation,
//! * VSIDS-style exponential variable activity with phase saving,
//! * Luby-sequence restarts,
//! * activity-based learnt-clause database reduction,
//! * solving under **assumptions** with final-conflict (unsat core)
//!   extraction, which is what makes the incremental SMT layer cheap, and
//! * All-SAT model enumeration via blocking clauses (used by the
//!   feature-model analyses to enumerate valid products).
//!
//! # Example
//!
//! ```
//! use llhsc_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

mod clause;
mod cnf;
mod dimacs;
mod drat;
mod enumerate;
mod lit;
mod solver;

pub use clause::ClauseStats;
pub use cnf::Cnf;
pub use dimacs::{parse_dimacs, write_dimacs, DimacsError, MAX_VARS};
pub use drat::{check_drat, parse_drat, write_drat, CheckMode, DratError, DratOutcome, ProofStep};
pub use enumerate::{BoundedCount, EnumOutcome, ModelIter};
pub use lit::{Lit, Var};
pub use solver::{
    AllocStats, Heartbeat, ProgressSink, SolveResult, Solver, SolverConfig, SolverStats,
};

//! Property-based tests: the CDCL solver against brute-force enumeration.

use llhsc_sat::{Cnf, Lit, ModelIter, SolveResult, Var};
use proptest::prelude::*;

/// A random clause is a non-empty set of literals over `n` variables.
fn arb_clause(n: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((0..n, any::<bool>()), 1..=4)
}

fn arb_cnf(
    max_vars: usize,
    max_clauses: usize,
) -> impl Strategy<Value = (usize, Vec<Vec<(usize, bool)>>)> {
    (2..=max_vars).prop_flat_map(move |n| {
        prop::collection::vec(arb_clause(n), 0..=max_clauses).prop_map(move |cs| (n, cs))
    })
}

fn build(n: usize, clauses: &[Vec<(usize, bool)>]) -> Cnf {
    let mut cnf = Cnf::new();
    let vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
    for c in clauses {
        cnf.add_clause(c.iter().map(|&(v, s)| Lit::new(vars[v], s)));
    }
    cnf
}

fn brute_force_models(n: usize, cnf: &Cnf) -> Vec<u32> {
    let mut models = Vec::new();
    for m in 0..(1u32 << n) {
        let assignment: Vec<bool> = (0..cnf.num_vars()).map(|v| (m >> v) & 1 == 1).collect();
        if cnf.eval(&assignment) == Some(true) {
            models.push(m);
        }
    }
    models
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The solver agrees with brute force on satisfiability, and any
    /// model it returns actually satisfies the formula.
    #[test]
    fn solver_matches_bruteforce((n, clauses) in arb_cnf(8, 24)) {
        let cnf = build(n, &clauses);
        let brute = !brute_force_models(n, &cnf).is_empty();
        let mut solver = cnf.to_solver();
        let got = solver.solve() == SolveResult::Sat;
        prop_assert_eq!(got, brute);
        if got {
            let model = solver.model();
            prop_assert_eq!(cnf.eval(&model), Some(true));
        }
    }

    /// All-SAT enumeration yields exactly the brute-force model count
    /// (projected on all problem variables).
    #[test]
    fn enumeration_matches_bruteforce((n, clauses) in arb_cnf(6, 12)) {
        let cnf = build(n, &clauses);
        let expected = brute_force_models(n, &cnf).len();
        let mut solver = cnf.to_solver();
        let relevant: Vec<Var> = (0..n).map(Var::from_index).collect();
        let got = ModelIter::new(&mut solver, relevant).count_up_to(1 << n);
        prop_assert_eq!(got.models, expected as u64);
        prop_assert!(got.is_exact());
    }

    /// Solving under assumptions equals solving the formula with the
    /// assumptions added as unit clauses.
    #[test]
    fn assumptions_equal_units(
        (n, clauses) in arb_cnf(7, 18),
        picks in prop::collection::vec((0..7usize, any::<bool>()), 0..3),
    ) {
        let cnf = build(n, &clauses);
        let assumptions: Vec<Lit> = picks
            .iter()
            .filter(|&&(v, _)| v < n)
            .map(|&(v, s)| Lit::new(Var::from_index(v), s))
            .collect();

        let mut with_assumptions = cnf.to_solver();
        let a = with_assumptions.solve_with(&assumptions) == SolveResult::Sat;

        let mut with_units = cnf.to_solver();
        for &l in &assumptions {
            with_units.add_clause([l]);
        }
        let b = with_units.solve() == SolveResult::Sat;
        prop_assert_eq!(a, b);
    }

    /// An unsat core really is unsatisfiable: re-solving with only the
    /// core assumptions still yields unsat.
    #[test]
    fn unsat_core_is_sufficient(
        (n, clauses) in arb_cnf(7, 18),
        picks in prop::collection::vec((0..7usize, any::<bool>()), 1..4),
    ) {
        let cnf = build(n, &clauses);
        let assumptions: Vec<Lit> = picks
            .iter()
            .filter(|&&(v, _)| v < n)
            .map(|&(v, s)| Lit::new(Var::from_index(v), s))
            .collect();
        let mut s = cnf.to_solver();
        if s.solve_with(&assumptions) == SolveResult::Unsat {
            let core: Vec<Lit> = s.unsat_core().iter().map(|&c| !c).collect();
            // Every core element must be one of the assumptions.
            for l in &core {
                prop_assert!(assumptions.contains(l), "core lit {l} not assumed");
            }
            let mut s2 = cnf.to_solver();
            prop_assert_eq!(s2.solve_with(&core), SolveResult::Unsat);
        }
    }

    /// DIMACS write→parse is the identity.
    #[test]
    fn dimacs_roundtrip((n, clauses) in arb_cnf(8, 20)) {
        let cnf = build(n, &clauses);
        let mut buf = Vec::new();
        llhsc_sat::write_dimacs(&cnf, &mut buf).unwrap();
        let back = llhsc_sat::parse_dimacs(buf.as_slice()).unwrap();
        prop_assert_eq!(cnf, back);
    }
}

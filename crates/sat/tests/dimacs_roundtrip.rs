//! Property-based round-trip tests for the DIMACS reader/writer:
//! `parse(write(cnf))` preserves the formula exactly — variable count,
//! clause count, literal order — and `write` is a fixpoint after one
//! round trip.

use llhsc_sat::{parse_dimacs, write_dimacs, Cnf, DimacsError, Lit, Var};
use proptest::prelude::*;

fn arb_clause(n: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((0..n, any::<bool>()), 0..=5)
}

/// `(vars, clauses)` with possibly-unused trailing variables and
/// possibly-empty clauses — both representable in DIMACS.
fn arb_cnf() -> impl Strategy<Value = (usize, Vec<Vec<(usize, bool)>>)> {
    (1..=12usize)
        .prop_flat_map(|n| prop::collection::vec(arb_clause(n), 0..=16).prop_map(move |cs| (n, cs)))
}

fn build(n: usize, clauses: &[Vec<(usize, bool)>]) -> Cnf {
    let mut cnf = Cnf::new();
    cnf.reserve_vars(n);
    for c in clauses {
        cnf.add_clause(c.iter().map(|&(v, s)| Lit::new(Var::from_index(v), s)));
    }
    cnf
}

fn clause_lists(cnf: &Cnf) -> Vec<Vec<Lit>> {
    cnf.clauses().map(<[Lit]>::to_vec).collect()
}

fn write_to_string(cnf: &Cnf) -> String {
    let mut buf = Vec::new();
    write_dimacs(cnf, &mut buf).expect("write to memory");
    String::from_utf8(buf).expect("DIMACS is ASCII")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// write → parse reproduces the exact formula.
    #[test]
    fn roundtrip_preserves_the_formula((n, clauses) in arb_cnf()) {
        let original = build(n, &clauses);
        let text = write_to_string(&original);
        let reparsed = parse_dimacs(text.as_bytes()).expect("own output parses");
        prop_assert_eq!(reparsed.num_vars(), original.num_vars());
        prop_assert_eq!(reparsed.num_clauses(), original.num_clauses());
        prop_assert_eq!(clause_lists(&reparsed), clause_lists(&original));
    }

    /// One round trip reaches a fixpoint: writing the reparsed formula
    /// yields byte-identical text.
    #[test]
    fn write_is_a_fixpoint_after_roundtrip((n, clauses) in arb_cnf()) {
        let original = build(n, &clauses);
        let text = write_to_string(&original);
        let reparsed = parse_dimacs(text.as_bytes()).expect("own output parses");
        prop_assert_eq!(write_to_string(&reparsed), text);
    }

    /// Comments and blank lines never change the parse.
    #[test]
    fn comments_and_blank_lines_are_ignored((n, clauses) in arb_cnf()) {
        let original = build(n, &clauses);
        let text = write_to_string(&original);
        let mut noisy = String::from("c leading comment\n\n% percent comment\n");
        for line in text.lines() {
            noisy.push_str(line);
            noisy.push_str("\nc interleaved\n\n");
        }
        let reparsed = parse_dimacs(noisy.as_bytes()).expect("noisy text parses");
        prop_assert_eq!(clause_lists(&reparsed), clause_lists(&original));
    }
}

#[test]
fn malformed_inputs_report_the_right_error() {
    let parse = |s: &str| parse_dimacs(s.as_bytes());
    assert!(matches!(
        parse("p cnf two 3\n1 0\n"),
        Err(DimacsError::BadHeader { line: 1, .. })
    ));
    assert!(matches!(
        parse("c no header\n1 0\n"),
        Err(DimacsError::MissingHeader { line: 2 })
    ));
    assert!(matches!(
        parse("p cnf 2 1\n1 x 0\n"),
        Err(DimacsError::BadLiteral { line: 2, .. })
    ));
    assert!(matches!(
        parse("p cnf 2 1\n1 -3 0\n"),
        Err(DimacsError::VarOutOfRange {
            var: -3,
            max: 2,
            ..
        })
    ));
    assert!(matches!(
        parse("p cnf 2 1\n1 2\n"),
        Err(DimacsError::UnterminatedClause { line: 2 })
    ));
}

//! Recursive-descent parser for DTS source, with `/include/` resolution.

use std::collections::HashMap;

use crate::error::{DtsError, Position};
use crate::lexer::{Lexer, Token, TokenKind};
use crate::tree::{Cell, DeviceTree, Node, PropValue, Property};

/// Supplies the contents of `/include/`d files.
///
/// The paper's running example includes `cpus.dtsi` from the main DTS;
/// in tests and the product-line engine the included sources come from
/// memory, so the provider abstracts over the source of file contents.
pub trait FileProvider {
    /// Returns the contents of `name`, or `None` if unknown.
    fn read(&self, name: &str) -> Option<String>;
}

/// A [`FileProvider`] backed by an in-memory map.
#[derive(Debug, Clone, Default)]
pub struct MapFileProvider {
    files: HashMap<String, String>,
}

impl MapFileProvider {
    /// Creates an empty provider.
    pub fn new() -> MapFileProvider {
        MapFileProvider::default()
    }

    /// Adds (or replaces) a file.
    pub fn insert(&mut self, name: &str, contents: &str) -> &mut MapFileProvider {
        self.files.insert(name.to_string(), contents.to_string());
        self
    }
}

impl FileProvider for MapFileProvider {
    fn read(&self, name: &str) -> Option<String> {
        self.files.get(name).cloned()
    }
}

/// An empty provider: any `/include/` fails.
struct NoIncludes;

impl FileProvider for NoIncludes {
    fn read(&self, _name: &str) -> Option<String> {
        None
    }
}

/// Maximum `/include/` nesting before assuming a cycle.
const MAX_INCLUDE_DEPTH: usize = 32;

/// Maximum node-body nesting. Real trees are a handful of levels deep;
/// the cap keeps the recursive-descent parser (and every recursive
/// consumer of the resulting tree: printer, FDT encoder, walkers) clear
/// of stack exhaustion on adversarial input. Stack overflow aborts the
/// process and cannot be caught, so this must be an explicit check.
pub(crate) const MAX_NODE_DEPTH: usize = 128;

/// Parses a standalone DTS document (no `/include/` support).
///
/// # Errors
///
/// Returns a [`DtsError`] on lexical or syntactic problems; an
/// `/include/` directive yields [`DtsError::MissingInclude`].
pub fn parse(src: &str) -> Result<DeviceTree, DtsError> {
    parse_with_includes(src, &NoIncludes)
}

/// Parses a DTS document, resolving `/include/` directives through the
/// given provider.
///
/// # Errors
///
/// Returns a [`DtsError`] on lexical or syntactic problems, missing
/// include files, or overly deep include nesting.
pub fn parse_with_includes(src: &str, provider: &dyn FileProvider) -> Result<DeviceTree, DtsError> {
    let tokens = tokenize_with_includes(src, provider, 0)?;
    Parser::new(tokens).parse_document()
}

/// Lexes `src`, splicing in the token streams of included files at each
/// `/include/` directive (textual-inclusion semantics, like dtc).
fn tokenize_with_includes(
    src: &str,
    provider: &dyn FileProvider,
    depth: usize,
) -> Result<Vec<Token>, DtsError> {
    let raw = Lexer::new(src).tokenize()?;
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        if raw[i].kind == TokenKind::Include {
            let at = raw[i].at;
            let Some(next) = raw.get(i + 1) else {
                return Err(DtsError::Unexpected {
                    at,
                    expected: "include file name".into(),
                    found: "end of input".into(),
                });
            };
            let TokenKind::Str(name) = &next.kind else {
                return Err(DtsError::Unexpected {
                    at: next.at,
                    expected: "include file name".into(),
                    found: next.kind.describe(),
                });
            };
            if depth >= MAX_INCLUDE_DEPTH {
                return Err(DtsError::IncludeDepth { file: name.clone() });
            }
            let contents = provider.read(name).ok_or(DtsError::MissingInclude {
                at,
                file: name.clone(),
            })?;
            let mut inner = tokenize_with_includes(&contents, provider, depth + 1)?;
            // Drop the inner EOF.
            inner.pop();
            out.extend(inner);
            i += 2;
        } else {
            out.push(raw[i].clone());
            i += 1;
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current node-body nesting, checked against [`MAX_NODE_DEPTH`].
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, DtsError> {
        let t = self.bump();
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(Parser::unexpected(&t, what))
        }
    }

    fn unexpected(t: &Token, expected: &str) -> DtsError {
        DtsError::Unexpected {
            at: t.at,
            expected: expected.to_string(),
            found: t.kind.describe(),
        }
    }

    /// document := '/dts-v1/' ';' toplevel* EOF
    fn parse_document(mut self) -> Result<DeviceTree, DtsError> {
        let mut tree = DeviceTree::default();
        if self.peek().kind == TokenKind::DtsV1 {
            self.bump();
            self.expect(&TokenKind::Semi, "';' after /dts-v1/")?;
            tree.has_version_tag = true;
        }
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Slash => {
                    self.bump();
                    let body = self.parse_node_body("")?;
                    let mut root = body;
                    root.name = String::new();
                    tree.root.merge(root);
                    self.expect(&TokenKind::Semi, "';' after node")?;
                }
                TokenKind::MemReserve => {
                    self.bump();
                    let a = self.bump();
                    let TokenKind::Num(addr) = a.kind else {
                        return Err(Parser::unexpected(&a, "address after /memreserve/"));
                    };
                    let b = self.bump();
                    let TokenKind::Num(size) = b.kind else {
                        return Err(Parser::unexpected(&b, "size after /memreserve/"));
                    };
                    self.expect(&TokenKind::Semi, "';' after /memreserve/")?;
                    tree.reservations.push((addr, size));
                }
                TokenKind::Ref(_) => {
                    let t = self.bump();
                    let TokenKind::Ref(label) = t.kind else {
                        unreachable!()
                    };
                    let body = self.parse_node_body("")?;
                    self.expect(&TokenKind::Semi, "';' after node")?;
                    let path = tree
                        .resolve_label(&label)
                        .ok_or(DtsError::UnknownLabel { label })?;
                    let target = tree
                        .find_path_mut(&path)
                        .ok_or_else(|| DtsError::NoSuchNode {
                            path: path.to_string(),
                        })?;
                    let mut patch = body;
                    patch.name = target.name.clone();
                    target.merge(patch);
                }
                _ => {
                    let t = self.peek().clone();
                    return Err(Parser::unexpected(&t, "'/' or '&label' at top level"));
                }
            }
        }
        Ok(tree)
    }

    /// node-body := '{' (property | child-node | delete)* '}'
    ///
    /// The leading name/labels are consumed by the caller; `name` is the
    /// node's name.
    fn parse_node_body(&mut self, name: &str) -> Result<Node, DtsError> {
        let open = self.expect(&TokenKind::LBrace, "'{'")?;
        self.depth += 1;
        if self.depth > MAX_NODE_DEPTH {
            return Err(DtsError::TooDeep { at: open.at });
        }
        let mut node = Node::new(name);
        loop {
            match self.peek().kind.clone() {
                TokenKind::RBrace => {
                    self.bump();
                    self.depth -= 1;
                    return Ok(node);
                }
                TokenKind::DeleteNode => {
                    self.bump();
                    let t = self.bump();
                    let TokenKind::Ident(child) = t.kind else {
                        return Err(Parser::unexpected(&t, "node name after /delete-node/"));
                    };
                    node.remove_child(&child);
                    self.expect(&TokenKind::Semi, "';' after /delete-node/")?;
                }
                TokenKind::DeleteProperty => {
                    self.bump();
                    let t = self.bump();
                    let TokenKind::Ident(prop) = t.kind else {
                        return Err(Parser::unexpected(
                            &t,
                            "property name after /delete-property/",
                        ));
                    };
                    node.remove_prop(&prop);
                    self.expect(&TokenKind::Semi, "';' after /delete-property/")?;
                }
                TokenKind::Label(_) => {
                    // One or more labels, then a child node.
                    let mut labels = Vec::new();
                    while let TokenKind::Label(l) = self.peek().kind.clone() {
                        self.bump();
                        labels.push(l);
                    }
                    let t = self.bump();
                    let TokenKind::Ident(child_name) = t.kind else {
                        return Err(Parser::unexpected(&t, "node name after label"));
                    };
                    let mut child = self.parse_node_body(&child_name)?;
                    self.expect(&TokenKind::Semi, "';' after node")?;
                    child.labels.splice(0..0, labels);
                    match node.children.iter_mut().find(|c| c.name == child.name) {
                        Some(existing) => existing.merge(child),
                        None => node.children.push(child),
                    }
                }
                TokenKind::Ident(ident) => {
                    self.bump();
                    match self.peek().kind {
                        TokenKind::LBrace => {
                            let child = self.parse_node_body(&ident)?;
                            self.expect(&TokenKind::Semi, "';' after node")?;
                            match node.children.iter_mut().find(|c| c.name == child.name) {
                                Some(existing) => existing.merge(child),
                                None => node.children.push(child),
                            }
                        }
                        TokenKind::Eq => {
                            self.bump();
                            let values = self.parse_values()?;
                            self.expect(&TokenKind::Semi, "';' after property")?;
                            node.set_prop(Property {
                                name: ident,
                                values,
                            });
                        }
                        TokenKind::Semi => {
                            self.bump();
                            node.set_prop(Property::flag(&ident));
                        }
                        _ => {
                            let t = self.peek().clone();
                            return Err(Parser::unexpected(&t, "'{', '=' or ';' after name"));
                        }
                    }
                }
                _ => {
                    let t = self.peek().clone();
                    return Err(Parser::unexpected(&t, "property, node or '}'"));
                }
            }
        }
    }

    /// values := value (',' value)*
    fn parse_values(&mut self) -> Result<Vec<PropValue>, DtsError> {
        let mut out = Vec::new();
        loop {
            out.push(self.parse_value()?);
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                return Ok(out);
            }
        }
    }

    /// value := '<' cell* '>' | string | '[' byte* ']' | '&label'
    fn parse_value(&mut self) -> Result<PropValue, DtsError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Lt => {
                let mut cells = Vec::new();
                loop {
                    let t = self.bump();
                    match t.kind {
                        TokenKind::Gt => return Ok(PropValue::Cells(cells)),
                        TokenKind::Num(n) => {
                            let v = u32::try_from(n).map_err(|_| DtsError::BadNumber {
                                at: t.at,
                                text: format!("{n:#x} does not fit in a 32-bit cell"),
                            })?;
                            cells.push(Cell::U32(v));
                        }
                        TokenKind::Ref(l) => cells.push(Cell::Ref(l)),
                        _ => return Err(Parser::unexpected(&t, "cell value or '>'")),
                    }
                }
            }
            TokenKind::Str(s) => Ok(PropValue::Str(s)),
            TokenKind::LBracket => {
                let mut bytes = Vec::new();
                loop {
                    let t = self.bump();
                    match t.kind {
                        TokenKind::RBracket => return Ok(PropValue::Bytes(bytes)),
                        TokenKind::HexRun(run) => {
                            // Tokens inside [] are raw hex-digit runs;
                            // `1234` denotes the bytes 0x12 0x34, and
                            // `0011` keeps its leading zero byte. Odd
                            // runs are ambiguous — reject them like dtc.
                            if run.len() % 2 == 1 {
                                return Err(DtsError::OddByteString {
                                    at: t.at,
                                    text: run,
                                });
                            }
                            for pair in run.as_bytes().chunks(2) {
                                bytes.push(hex_pair(pair[0], pair[1]));
                            }
                        }
                        _ => return Err(Parser::unexpected(&t, "hex byte or ']'")),
                    }
                }
            }
            TokenKind::Ref(l) => Ok(PropValue::Ref(l)),
            _ => Err(Parser::unexpected(&t, "property value")),
        }
    }
}

/// The position of the current token — exposed for error reporting by
/// callers embedding the parser.
#[allow(dead_code)]
fn position_of(t: &Token) -> Position {
    t.at
}

/// Converts one hex-digit pair to its byte. The lexer guarantees both
/// inputs are ASCII hex digits, so the fallback arms are unreachable —
/// they exist to keep this a total function with no panic path.
fn hex_pair(hi: u8, lo: u8) -> u8 {
    let digit = |c: u8| match c {
        b'0'..=b'9' => c - b'0',
        b'a'..=b'f' => c - b'a' + 10,
        b'A'..=b'F' => c - b'A' + 10,
        _ => 0,
    };
    (digit(hi) << 4) | digit(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUNNING_EXAMPLE: &str = r#"
/dts-v1/;
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x0>;
        };
        cpu@1 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x1>;
        };
    };
    uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
    };
};
"#;

    #[test]
    fn parses_running_example() {
        let t = parse(RUNNING_EXAMPLE).unwrap();
        assert!(t.has_version_tag);
        assert_eq!(t.root.prop_u32("#address-cells"), Some(2));
        let mem = t.find("/memory@40000000").unwrap();
        assert_eq!(mem.prop_str("device_type"), Some("memory"));
        assert_eq!(mem.prop("reg").unwrap().flat_cells().unwrap().len(), 8);
        assert!(t.find("/cpus/cpu@0").is_some());
        assert!(t.find("/cpus/cpu@1").is_some());
        assert_eq!(t.find("/cpus/cpu@1").unwrap().prop_u32("reg"), Some(1));
    }

    #[test]
    fn parses_flag_property() {
        let t = parse("/ { chosen { interrupt-controller; }; };").unwrap();
        let c = t.find("/chosen").unwrap();
        assert!(c.prop("interrupt-controller").is_some());
        assert!(c.prop("interrupt-controller").unwrap().values.is_empty());
    }

    #[test]
    fn parses_multiple_values() {
        let t = parse(r#"/ { compatible = "a,b", "c,d"; };"#).unwrap();
        let p = t.root.prop("compatible").unwrap();
        assert_eq!(p.values.len(), 2);
    }

    #[test]
    fn parses_byte_string() {
        let t = parse("/ { mac = [ de ad be ef 12 34 ]; };").unwrap();
        assert_eq!(
            t.root.prop("mac").unwrap().values[0],
            PropValue::Bytes(vec![0xde, 0xad, 0xbe, 0xef, 0x12, 0x34])
        );
    }

    #[test]
    fn byte_string_keeps_leading_zero_bytes() {
        // Regression: `[ 0011 ]` used to lex as the number 0x11 and
        // re-derive digits via format!, dropping the 0x00 byte.
        let t = parse("/ { mac = [ 0011 ]; };").unwrap();
        assert_eq!(
            t.root.prop("mac").unwrap().values[0],
            PropValue::Bytes(vec![0x00, 0x11])
        );
        let t = parse("/ { mac = [ 00 00 00 01 ]; };").unwrap();
        assert_eq!(
            t.root.prop("mac").unwrap().values[0],
            PropValue::Bytes(vec![0x00, 0x00, 0x00, 0x01])
        );
    }

    #[test]
    fn odd_byte_string_run_rejected() {
        let r = parse("/ { mac = [ 011 ]; };");
        assert!(matches!(r, Err(DtsError::OddByteString { .. })), "{r:?}");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let depth = MAX_NODE_DEPTH + 8;
        let mut src = String::from("/ { ");
        for i in 0..depth {
            src.push_str(&format!("n{i} {{ "));
        }
        for _ in 0..depth {
            src.push_str("}; ");
        }
        src.push_str("};");
        let r = parse(&src);
        assert!(matches!(r, Err(DtsError::TooDeep { .. })), "{r:?}");
    }

    #[test]
    fn parses_labels_and_reference_extension() {
        let src = r#"
/ {
    uart0: uart@20000000 { reg = <0x20000000 0x1000>; };
};
&uart0 {
    status = "okay";
};
"#;
        let t = parse(src).unwrap();
        let u = t.find("/uart@20000000").unwrap();
        assert_eq!(u.labels, vec!["uart0".to_string()]);
        assert_eq!(u.prop_str("status"), Some("okay"));
    }

    #[test]
    fn unknown_label_errors() {
        let r = parse("/ { }; &nope { };");
        assert!(matches!(r, Err(DtsError::UnknownLabel { .. })));
    }

    #[test]
    fn phandle_reference_in_cells() {
        let src = r#"
/ {
    intc: interrupt-controller@10000000 { };
    uart@20000000 { interrupt-parent = <&intc>; };
};
"#;
        let t = parse(src).unwrap();
        let u = t.find("/uart@20000000").unwrap();
        assert_eq!(
            u.prop("interrupt-parent").unwrap().values[0],
            PropValue::Cells(vec![Cell::Ref("intc".into())])
        );
    }

    #[test]
    fn includes_are_spliced() {
        let mut files = MapFileProvider::new();
        files.insert(
            "cpus.dtsi",
            r#"
/ {
    cpus {
        #address-cells = <0x1>;
        #size-cells = <0x0>;
        cpu@0 { reg = <0x0>; };
        cpu@1 { reg = <0x1>; };
    };
};
"#,
        );
        let main = r#"
/dts-v1/;
/include/ "cpus.dtsi"
/ {
    memory@40000000 { device_type = "memory"; };
};
"#;
        let t = parse_with_includes(main, &files).unwrap();
        assert!(t.find("/cpus/cpu@0").is_some());
        assert!(t.find("/memory@40000000").is_some());
    }

    #[test]
    fn missing_include_errors() {
        let r = parse("/include/ \"nope.dtsi\"\n/ { };");
        assert!(matches!(r, Err(DtsError::MissingInclude { .. })));
    }

    #[test]
    fn include_cycle_detected() {
        let mut files = MapFileProvider::new();
        files.insert("a.dtsi", "/include/ \"b.dtsi\"");
        files.insert("b.dtsi", "/include/ \"a.dtsi\"");
        let r = parse_with_includes("/include/ \"a.dtsi\"\n/ { };", &files);
        assert!(matches!(r, Err(DtsError::IncludeDepth { .. })));
    }

    #[test]
    fn repeated_root_merges() {
        let t = parse("/ { a { x = <1>; }; }; / { a { y = <2>; }; b { }; };").unwrap();
        let a = t.find("/a").unwrap();
        assert_eq!(a.prop_u32("x"), Some(1));
        assert_eq!(a.prop_u32("y"), Some(2));
        assert!(t.find("/b").is_some());
    }

    #[test]
    fn delete_node_and_property() {
        let src = r#"
/ {
    a { x = <1>; y = <2>; };
    a { /delete-property/ x; };
    b { };
    /delete-node/ b;
};
"#;
        // delete directives act on the state accumulated so far within
        // the same node body; the second `a { … }` merges into the first.
        let t = parse(src).unwrap();
        let a = t.find("/a").unwrap();
        // x survives: the delete happened inside the *second* `a` body
        // before merging. The spec-level behaviour for cross-body deletes
        // requires whole-document ordering, which `dtc` implements and we
        // approximate per body; y must still be present.
        assert_eq!(a.prop_u32("y"), Some(2));
        assert!(t.find("/b").is_none());
    }

    #[test]
    fn cell_overflow_rejected() {
        let r = parse("/ { reg = <0x100000000>; };");
        assert!(matches!(r, Err(DtsError::BadNumber { .. })));
    }

    #[test]
    fn error_position_is_meaningful() {
        let r = parse("/ {\n  bad bad bad\n};");
        match r {
            Err(DtsError::Unexpected { at, .. }) => assert_eq!(at.line, 2),
            other => panic!("expected Unexpected, got {other:?}"),
        }
    }

    #[test]
    fn empty_document_is_empty_tree() {
        let t = parse("").unwrap();
        assert!(!t.has_version_tag);
        assert_eq!(t.size(), 1);
    }
}

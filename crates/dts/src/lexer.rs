//! The DTS lexer.

use crate::error::{DtsError, Position};

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub(crate) kind: TokenKind,
    pub(crate) at: Position,
}

/// Token kinds of the DTS grammar subset used by the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// `/dts-v1/` version tag.
    DtsV1,
    /// `/include/` directive keyword.
    Include,
    /// `/delete-node/` directive keyword.
    DeleteNode,
    /// `/delete-property/` directive keyword.
    DeleteProperty,
    /// `/memreserve/` directive keyword.
    MemReserve,
    /// A name: node names (possibly with `@unit`), property names
    /// (possibly with `#`, `-`, `,`, `.`), label names.
    Ident(String),
    /// `&label` reference.
    Ref(String),
    /// A quoted string literal (unescaped contents).
    Str(String),
    /// An integer literal inside a cell list.
    Num(u64),
    /// A bare run of hex digits inside `[ … ]`, kept verbatim so the
    /// parser sees the full lexeme width (`[ 0011 ]` is two bytes, not
    /// the number 0x11).
    HexRun(String),
    /// `label:` — the ident plus the colon.
    Label(String),
    LBrace,
    RBrace,
    Lt,
    Gt,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Eq,
    /// `/` — the root node name.
    Slash,
    Eof,
}

impl TokenKind {
    pub(crate) fn describe(&self) -> String {
        match self {
            TokenKind::DtsV1 => "'/dts-v1/'".into(),
            TokenKind::Include => "'/include/'".into(),
            TokenKind::DeleteNode => "'/delete-node/'".into(),
            TokenKind::DeleteProperty => "'/delete-property/'".into(),
            TokenKind::MemReserve => "'/memreserve/'".into(),
            TokenKind::Ident(s) => format!("identifier {s:?}"),
            TokenKind::Ref(s) => format!("reference &{s}"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Num(n) => format!("number {n:#x}"),
            TokenKind::HexRun(s) => format!("byte string run {s:?}"),
            TokenKind::Label(s) => format!("label {s}:"),
            TokenKind::LBrace => "'{'".into(),
            TokenKind::RBrace => "'}'".into(),
            TokenKind::Lt => "'<'".into(),
            TokenKind::Gt => "'>'".into(),
            TokenKind::LBracket => "'['".into(),
            TokenKind::RBracket => "']'".into(),
            TokenKind::Semi => "';'".into(),
            TokenKind::Comma => "','".into(),
            TokenKind::Eq => "'='".into(),
            TokenKind::Slash => "'/'".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

pub(crate) struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Inside `[ … ]` byte strings, bare tokens are hex bytes.
    hex_mode: bool,
}

/// Characters permitted inside node/property names. The DeviceTree spec
/// allows `a-zA-Z0-9,._+-` for property names and additionally `@` (unit
/// address separator) and `#` in common practice.
fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b',' | b'.' | b'_' | b'+' | b'-' | b'@' | b'#' | b'?')
}

impl<'a> Lexer<'a> {
    pub(crate) fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            hex_mode: false,
        }
    }

    fn here(&self) -> Position {
        Position::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), DtsError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let at = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(DtsError::Unterminated {
                                    at,
                                    what: "comment",
                                })
                            }
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Consumes the continuation bytes of a UTF-8 scalar whose lead byte
    /// `first` was already bumped, and appends the decoded character.
    /// The source is a `&str`, so well-formed continuations are always
    /// present; a truncated or malformed sequence becomes an error, not
    /// a panic.
    fn push_scalar(&mut self, first: u8, out: &mut String, at: Position) -> Result<(), DtsError> {
        if first < 0x80 {
            out.push(first as char);
            return Ok(());
        }
        let width = match first {
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            0xf0..=0xf7 => 4,
            _ => 1,
        };
        let mut buf = [first, 0, 0, 0];
        for slot in buf.iter_mut().take(width).skip(1) {
            match self.bump() {
                Some(b) => *slot = b,
                None => return Err(DtsError::Unterminated { at, what: "string" }),
            }
        }
        match std::str::from_utf8(&buf[..width]) {
            Ok(s) => {
                out.push_str(s);
                Ok(())
            }
            Err(_) => Err(DtsError::Lex {
                at,
                found: char::REPLACEMENT_CHARACTER,
            }),
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind, DtsError> {
        let at = self.here();
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(DtsError::Unterminated { at, what: "string" }),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'0') => out.push('\0'),
                    Some(c) => self.push_scalar(c, &mut out, at)?,
                    None => return Err(DtsError::Unterminated { at, what: "string" }),
                },
                Some(c) => self.push_scalar(c, &mut out, at)?,
            }
        }
    }

    fn lex_number_or_name(&mut self) -> Result<TokenKind, DtsError> {
        let at = self.here();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_name_char(c) {
                self.bump();
            } else {
                break;
            }
        }
        // `is_name_char` only accepts ASCII, so this cannot allocate
        // mojibake; build the string byte-by-byte instead of trusting a
        // `from_utf8().expect()`.
        let text: String = self.src[start..self.pos]
            .iter()
            .map(|&b| b as char)
            .collect();
        // Inside byte strings every bare token is a raw hex-digit run;
        // keep the lexeme verbatim so leading zero bytes survive.
        if self.hex_mode {
            if !text.is_empty() && text.bytes().all(|c| c.is_ascii_hexdigit()) {
                return Ok(TokenKind::HexRun(text));
            }
            return Err(DtsError::BadNumber { at, text });
        }
        // A label is a plain identifier immediately followed by ':'.
        if self.peek() == Some(b':') && !text.is_empty() && !text.contains('@') {
            self.bump();
            return Ok(TokenKind::Label(text));
        }
        // Numbers: 0x…, or all-decimal digits.
        if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            return u64::from_str_radix(hex, 16)
                .map(TokenKind::Num)
                .map_err(|_| DtsError::BadNumber { at, text });
        }
        if !text.is_empty() && text.bytes().all(|c| c.is_ascii_digit()) {
            return text
                .parse::<u64>()
                .map(TokenKind::Num)
                .map_err(|_| DtsError::BadNumber { at, text });
        }
        Ok(TokenKind::Ident(text))
    }

    pub(crate) fn next_token(&mut self) -> Result<Token, DtsError> {
        self.skip_trivia()?;
        let at = self.here();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                at,
            });
        };
        let kind = match c {
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'<' => {
                self.bump();
                TokenKind::Lt
            }
            b'>' => {
                self.bump();
                TokenKind::Gt
            }
            b'[' => {
                self.bump();
                self.hex_mode = true;
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                self.hex_mode = false;
                TokenKind::RBracket
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'"' => self.lex_string()?,
            b'&' => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if is_name_char(c) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let name: String = self.src[start..self.pos]
                    .iter()
                    .map(|&b| b as char)
                    .collect();
                if name.is_empty() {
                    return Err(DtsError::Lex { at, found: '&' });
                }
                TokenKind::Ref(name)
            }
            b'/' => {
                // Either a directive /word/ or the bare root name '/'.
                let rest = &self.src[self.pos + 1..];
                let directive = |word: &[u8], rest: &[u8]| -> bool {
                    rest.len() > word.len()
                        && &rest[..word.len()] == word
                        && rest[word.len()] == b'/'
                };
                if directive(b"dts-v1", rest) {
                    for _ in 0.."/dts-v1/".len() {
                        self.bump();
                    }
                    TokenKind::DtsV1
                } else if directive(b"include", rest) {
                    for _ in 0.."/include/".len() {
                        self.bump();
                    }
                    TokenKind::Include
                } else if directive(b"delete-node", rest) {
                    for _ in 0.."/delete-node/".len() {
                        self.bump();
                    }
                    TokenKind::DeleteNode
                } else if directive(b"delete-property", rest) {
                    for _ in 0.."/delete-property/".len() {
                        self.bump();
                    }
                    TokenKind::DeleteProperty
                } else if directive(b"memreserve", rest) {
                    for _ in 0.."/memreserve/".len() {
                        self.bump();
                    }
                    TokenKind::MemReserve
                } else {
                    self.bump();
                    TokenKind::Slash
                }
            }
            c if is_name_char(c) => self.lex_number_or_name()?,
            c => {
                return Err(DtsError::Lex {
                    at,
                    found: c as char,
                })
            }
        };
        Ok(Token { kind, at })
    }

    /// Lexes the whole input into a token vector ending with `Eof`.
    pub(crate) fn tokenize(mut self) -> Result<Vec<Token>, DtsError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("/dts-v1/; / { };"),
            vec![DtsV1, Semi, Slash, LBrace, RBrace, Semi, Eof]
        );
    }

    #[test]
    fn node_with_unit_address() {
        let k = kinds("memory@40000000 { };");
        assert_eq!(k[0], TokenKind::Ident("memory@40000000".into()));
    }

    #[test]
    fn property_names_with_hash() {
        let k = kinds("#address-cells = <2>;");
        assert_eq!(k[0], TokenKind::Ident("#address-cells".into()));
        assert_eq!(k[1], TokenKind::Eq);
        assert_eq!(k[2], TokenKind::Lt);
        assert_eq!(k[3], TokenKind::Num(2));
        assert_eq!(k[4], TokenKind::Gt);
    }

    #[test]
    fn numbers_hex_and_dec() {
        assert_eq!(kinds("<0x40000000 12>")[1], TokenKind::Num(0x4000_0000));
        assert_eq!(kinds("<0x40000000 12>")[2], TokenKind::Num(12));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""arm,cortex-a53""#)[0],
            TokenKind::Str("arm,cortex-a53".into())
        );
        assert_eq!(kinds(r#""a\nb""#)[0], TokenKind::Str("a\nb".into()));
    }

    #[test]
    fn labels_and_refs() {
        let k = kinds("uart0: uart@20000000 { }; &uart0 { };");
        assert_eq!(k[0], TokenKind::Label("uart0".into()));
        assert_eq!(k[1], TokenKind::Ident("uart@20000000".into()));
        assert!(k.contains(&TokenKind::Ref("uart0".into())));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("// line\n/* block\n comment */ foo");
        assert_eq!(k[0], TokenKind::Ident("foo".into()));
    }

    #[test]
    fn directives() {
        use TokenKind::*;
        assert_eq!(
            kinds("/include/ \"cpus.dtsi\""),
            vec![Include, Str("cpus.dtsi".into()), Eof]
        );
        assert_eq!(kinds("/delete-node/ foo;")[0], DeleteNode);
        assert_eq!(kinds("/delete-property/ reg;")[0], DeleteProperty);
    }

    #[test]
    fn unterminated_string_errors() {
        let r = Lexer::new("\"abc").tokenize();
        assert!(matches!(
            r,
            Err(DtsError::Unterminated { what: "string", .. })
        ));
    }

    #[test]
    fn unterminated_comment_errors() {
        let r = Lexer::new("/* abc").tokenize();
        assert!(matches!(
            r,
            Err(DtsError::Unterminated {
                what: "comment",
                ..
            })
        ));
    }

    #[test]
    fn bad_number_errors() {
        let r = Lexer::new("0xzz").tokenize();
        assert!(matches!(r, Err(DtsError::BadNumber { .. })));
    }

    #[test]
    fn positions_track_lines() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!(toks[0].at, Position::new(1, 1));
        assert_eq!(toks[1].at, Position::new(2, 3));
    }

    #[test]
    fn byte_string_brackets() {
        use TokenKind::*;
        let k = kinds("[ 12 34 ]");
        assert_eq!(k[0], LBracket);
        assert_eq!(k[1], HexRun("12".into()));
        assert_eq!(k[2], HexRun("34".into()));
        assert_eq!(k[3], RBracket);
    }

    #[test]
    fn hex_runs_keep_lexeme_width() {
        // `[ 0011 ]` is the two bytes 0x00 0x11 — the leading zeros are
        // significant and must survive lexing.
        let k = kinds("[ 0011 ]");
        assert_eq!(k[1], TokenKind::HexRun("0011".into()));
    }

    #[test]
    fn non_hex_in_byte_string_errors() {
        let r = Lexer::new("[ 0xzz ]").tokenize();
        assert!(matches!(r, Err(DtsError::BadNumber { .. })));
    }

    #[test]
    fn multibyte_strings_survive() {
        assert_eq!(kinds("\"µ-ctrl\"")[0], TokenKind::Str("µ-ctrl".into()));
    }
}

//! Error and source-position types.

use std::error::Error;
use std::fmt;

/// A 1-based line/column source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Position {
    /// 1-based line number (0 for "unknown").
    pub line: u32,
    /// 1-based column number (0 for "unknown").
    pub column: u32,
}

impl Position {
    /// Creates a position.
    pub fn new(line: u32, column: u32) -> Position {
        Position { line, column }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while lexing, parsing or manipulating DeviceTree
/// sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtsError {
    /// An unexpected character in the input stream.
    Lex {
        /// Where it happened.
        at: Position,
        /// What was found.
        found: char,
    },
    /// A malformed numeric literal.
    BadNumber {
        /// Where it happened.
        at: Position,
        /// The offending token text.
        text: String,
    },
    /// An unterminated string or block comment.
    Unterminated {
        /// Where the construct started.
        at: Position,
        /// What kind of construct ("string", "comment", "byte string").
        what: &'static str,
    },
    /// The parser expected one construct but found another.
    Unexpected {
        /// Where it happened.
        at: Position,
        /// What the parser wanted.
        expected: String,
        /// What it got.
        found: String,
    },
    /// An `/include/` directive referenced a file the provider does not
    /// know about.
    MissingInclude {
        /// Where the directive appeared.
        at: Position,
        /// The requested file name.
        file: String,
    },
    /// Includes recurse beyond the nesting limit (cycle protection).
    IncludeDepth {
        /// The file that pushed past the limit.
        file: String,
    },
    /// A `&label` reference did not resolve to any labelled node.
    UnknownLabel {
        /// The label name.
        label: String,
    },
    /// A path lookup failed.
    NoSuchNode {
        /// The path that failed to resolve.
        path: String,
    },
    /// A property or node value was structurally invalid for the
    /// requested interpretation (e.g. a `reg` that is not a cell array).
    BadValue {
        /// Node path.
        path: String,
        /// Explanation.
        message: String,
    },
    /// A byte-string hex run with an odd number of digits (`[ 011 ]`).
    /// Bytes are two digits each; `dtc` rejects odd runs and so do we.
    OddByteString {
        /// Where the run appeared.
        at: Position,
        /// The offending run text.
        text: String,
    },
    /// Node nesting beyond the supported limit. Guards the
    /// recursive-descent parser (and every later tree walk) against
    /// stack exhaustion on adversarial input.
    TooDeep {
        /// Where the limit was exceeded.
        at: Position,
    },
}

impl fmt::Display for DtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtsError::Lex { at, found } => {
                write!(f, "{at}: unexpected character {found:?}")
            }
            DtsError::BadNumber { at, text } => {
                write!(f, "{at}: malformed number {text:?}")
            }
            DtsError::Unterminated { at, what } => {
                write!(f, "{at}: unterminated {what}")
            }
            DtsError::Unexpected {
                at,
                expected,
                found,
            } => {
                write!(f, "{at}: expected {expected}, found {found}")
            }
            DtsError::MissingInclude { at, file } => {
                write!(f, "{at}: include file {file:?} not found")
            }
            DtsError::IncludeDepth { file } => {
                write!(f, "include nesting too deep (cycle?) at {file:?}")
            }
            DtsError::UnknownLabel { label } => {
                write!(f, "reference to unknown label &{label}")
            }
            DtsError::NoSuchNode { path } => write!(f, "no node at path {path:?}"),
            DtsError::BadValue { path, message } => {
                write!(f, "{path}: {message}")
            }
            DtsError::OddByteString { at, text } => {
                write!(
                    f,
                    "{at}: byte string run {text:?} has an odd number of hex digits"
                )
            }
            DtsError::TooDeep { at } => {
                write!(f, "{at}: node nesting too deep")
            }
        }
    }
}

impl Error for DtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let p = Position::new(3, 7);
        assert_eq!(p.to_string(), "3:7");
        let e = DtsError::Unexpected {
            at: p,
            expected: "';'".into(),
            found: "'}'".into(),
        };
        assert_eq!(e.to_string(), "3:7: expected ';', found '}'");
        let e = DtsError::NoSuchNode { path: "/x".into() };
        assert!(e.to_string().contains("/x"));
    }
}

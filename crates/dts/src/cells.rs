//! Interpretation of `reg` under `#address-cells` / `#size-cells`.
//!
//! The paper's central observation (§II-A) is that `reg` has *dynamic*
//! semantics: the same property text denotes different address layouts
//! depending on the `#address-cells`/`#size-cells` values of the parent
//! node. The running example's killer bug (§IV-C) is exactly a cells
//! reinterpretation: a delta switches the root to 32-bit cells but the
//! memory node still carries 64-bit-shaped data, so "four banks of
//! memory are found, instead of the original two" — with a collision at
//! address 0.
//!
//! This module performs that interpretation faithfully so the semantic
//! checker sees the same (mis)parse the hypervisor would.

use crate::error::DtsError;
use crate::tree::{DeviceTree, Node, NodePath};

/// Default `#address-cells` when a parent does not specify it
/// (DeviceTree specification §2.3.5).
pub const DEFAULT_ADDRESS_CELLS: u32 = 2;
/// Default `#size-cells` when a parent does not specify it.
pub const DEFAULT_SIZE_CELLS: u32 = 1;
/// Largest supported `#address-cells`/`#size-cells`. Cells are 32 bits
/// and addresses fit in `u128`, so four cells is the ceiling; anything
/// larger would silently truncate in [`take_cells`] — exactly the value
/// loss this checker exists to catch, so it is an error instead.
pub const MAX_CELLS: u32 = 4;

/// One `(address, size)` pair decoded from a `reg` property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegEntry {
    /// Base address (up to 64 bits with 2 address cells).
    pub address: u128,
    /// Region length in bytes.
    pub size: u128,
}

impl RegEntry {
    /// Creates an entry.
    pub fn new(address: u128, size: u128) -> RegEntry {
        RegEntry { address, size }
    }

    /// One-past-the-end address, saturating at `u128::MAX`. A 4-cell
    /// region near the top of the address space can make `address +
    /// size` overflow even `u128`; saturating keeps [`RegEntry::overlaps`]
    /// total, and [`RegEntry::wraps`] reports the wrap as a finding.
    pub fn end(&self) -> u128 {
        self.address.saturating_add(self.size)
    }

    /// `true` when the region wraps past the end of the address space
    /// (`address + size` overflows `u128`).
    pub fn wraps(&self) -> bool {
        self.address.checked_add(self.size).is_none()
    }

    /// `true` when two regions share at least one address. Empty
    /// regions overlap nothing.
    pub fn overlaps(&self, other: &RegEntry) -> bool {
        self.size != 0
            && other.size != 0
            && self.address < other.end()
            && other.address < self.end()
    }
}

/// A `reg`-bearing device with its decoded regions, as discovered by
/// [`collect_regions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceRegions {
    /// Path of the node that carried `reg`.
    pub path: NodePath,
    /// The `device_type` property, if any (e.g. `"memory"`).
    pub device_type: Option<String>,
    /// Decoded regions.
    pub regions: Vec<RegEntry>,
    /// The `#address-cells`/`#size-cells` pair used to decode.
    pub cells: (u32, u32),
}

/// The `(#address-cells, #size-cells)` that apply to children of
/// `parent`.
pub fn cell_counts(parent: &Node) -> (u32, u32) {
    (
        parent
            .prop_u32("#address-cells")
            .unwrap_or(DEFAULT_ADDRESS_CELLS),
        parent.prop_u32("#size-cells").unwrap_or(DEFAULT_SIZE_CELLS),
    )
}

/// Like [`cell_counts`], but rejects declarations outside `0..=MAX_CELLS`
/// with an error naming the declaring node. `#address-cells = <5>` would
/// make [`take_cells`] drop high bits; `#address-cells = <0xffffffff>`
/// would overflow the `address_cells + size_cells` stride arithmetic.
///
/// # Errors
///
/// [`DtsError::BadValue`] naming `path` when either count exceeds
/// [`MAX_CELLS`].
pub fn checked_cell_counts(path: &NodePath, parent: &Node) -> Result<(u32, u32), DtsError> {
    let (ac, sc) = cell_counts(parent);
    for (name, v) in [("#address-cells", ac), ("#size-cells", sc)] {
        if v > MAX_CELLS {
            return Err(DtsError::BadValue {
                path: path.to_string(),
                message: format!("{name} = {v} outside supported range 0..={MAX_CELLS}"),
            });
        }
    }
    Ok((ac, sc))
}

fn take_cells(cells: &[u32], n: u32) -> u128 {
    let mut v: u128 = 0;
    for &c in &cells[..n as usize] {
        v = (v << 32) | u128::from(c);
    }
    v
}

/// Decodes a node's `reg` property under the given cell counts.
///
/// # Errors
///
/// Returns [`DtsError::BadValue`] if `reg` is present but is not a cell
/// list, contains unresolved references, its length is not a multiple
/// of `address_cells + size_cells` — the arity check `dt-schema`
/// performs (§IV-B) — or either cell count exceeds [`MAX_CELLS`]. A
/// missing `reg` yields an empty vector.
pub fn decode_reg(
    path: &NodePath,
    node: &Node,
    address_cells: u32,
    size_cells: u32,
) -> Result<Vec<RegEntry>, DtsError> {
    for (name, v) in [
        ("#address-cells", address_cells),
        ("#size-cells", size_cells),
    ] {
        if v > MAX_CELLS {
            return Err(DtsError::BadValue {
                path: path.to_string(),
                message: format!("{name} = {v} outside supported range 0..={MAX_CELLS}"),
            });
        }
    }
    let Some(prop) = node.prop("reg") else {
        return Ok(Vec::new());
    };
    let flat = prop.flat_cells().ok_or_else(|| DtsError::BadValue {
        path: path.to_string(),
        message: "reg must be a cell array of literals".into(),
    })?;
    let stride = address_cells as usize + size_cells as usize;
    if stride == 0 {
        return Err(DtsError::BadValue {
            path: path.to_string(),
            message: "#address-cells + #size-cells must be positive".into(),
        });
    }
    if flat.len() % stride != 0 {
        return Err(DtsError::BadValue {
            path: path.to_string(),
            message: format!(
                "reg has {} cells, not a multiple of #address-cells ({address_cells}) + #size-cells ({size_cells})",
                flat.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(flat.len() / stride);
    for chunk in flat.chunks(stride) {
        let address = take_cells(chunk, address_cells);
        let size = if size_cells == 0 {
            0
        } else {
            take_cells(&chunk[address_cells as usize..], size_cells)
        };
        out.push(RegEntry { address, size });
    }
    Ok(out)
}

/// Walks the whole tree and decodes every `reg` property under its
/// parent's cell counts.
///
/// # Errors
///
/// Propagates the first decoding error (see [`decode_reg`]).
pub fn collect_regions(tree: &DeviceTree) -> Result<Vec<DeviceRegions>, DtsError> {
    let mut out = Vec::new();
    fn rec(
        node: &Node,
        path: &NodePath,
        parent_cells: (u32, u32),
        out: &mut Vec<DeviceRegions>,
    ) -> Result<(), DtsError> {
        let here = if node.name.is_empty() {
            NodePath::root()
        } else {
            path.join(&node.name)
        };
        if node.prop("reg").is_some() {
            let regions = decode_reg(&here, node, parent_cells.0, parent_cells.1)?;
            out.push(DeviceRegions {
                path: here.clone(),
                device_type: node.prop_str("device_type").map(str::to_string),
                regions,
                cells: parent_cells,
            });
        }
        let my_cells = checked_cell_counts(&here, node)?;
        for c in &node.children {
            rec(c, &here, my_cells, out)?;
        }
        Ok(())
    }
    rec(
        &tree.root,
        &NodePath::root(),
        (DEFAULT_ADDRESS_CELLS, DEFAULT_SIZE_CELLS),
        &mut out,
    )?;
    Ok(out)
}

/// One `ranges` translation entry: addresses `child_base..child_base+size`
/// in the child bus map to `parent_base..` in the parent bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeEntry {
    /// Start of the window in the child address space.
    pub child_base: u128,
    /// Start of the window in the parent address space.
    pub parent_base: u128,
    /// Window length.
    pub size: u128,
}

/// Decodes a node's `ranges` property. `None` means the property is
/// absent (no translation across this bus); `Some(vec![])` is the empty
/// property (identity mapping).
///
/// Layout per the DeviceTree specification §2.3.8: each entry is
/// `child-address parent-address size`, where the child address uses
/// the node's own `#address-cells`, the parent address the *parent's*
/// `#address-cells`, and the size the node's `#size-cells`.
///
/// # Errors
///
/// Returns [`DtsError::BadValue`] on non-cell values or arity mismatch.
pub fn decode_ranges(
    path: &NodePath,
    node: &Node,
    parent_address_cells: u32,
) -> Result<Option<Vec<RangeEntry>>, DtsError> {
    let Some(prop) = node.prop("ranges") else {
        return Ok(None);
    };
    if prop.values.is_empty() {
        return Ok(Some(Vec::new())); // identity
    }
    let flat = prop.flat_cells().ok_or_else(|| DtsError::BadValue {
        path: path.to_string(),
        message: "ranges must be a cell array of literals".into(),
    })?;
    if parent_address_cells > MAX_CELLS {
        return Err(DtsError::BadValue {
            path: path.to_string(),
            message: format!(
                "parent #address-cells = {parent_address_cells} outside supported range 0..={MAX_CELLS}"
            ),
        });
    }
    let (child_ac, child_sc) = checked_cell_counts(path, node)?;
    let stride = child_ac as usize + parent_address_cells as usize + child_sc as usize;
    if stride == 0 || flat.len() % stride != 0 {
        return Err(DtsError::BadValue {
            path: path.to_string(),
            message: format!(
                "ranges has {} cells, not a multiple of child #address-cells \
                 ({child_ac}) + parent #address-cells ({parent_address_cells}) \
                 + child #size-cells ({child_sc})",
                flat.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(flat.len() / stride);
    for chunk in flat.chunks(stride) {
        let child_base = take_cells(chunk, child_ac);
        let parent_base = take_cells(&chunk[child_ac as usize..], parent_address_cells);
        let size = if child_sc == 0 {
            0
        } else {
            take_cells(
                &chunk[(child_ac + parent_address_cells) as usize..],
                child_sc,
            )
        };
        out.push(RangeEntry {
            child_base,
            parent_base,
            size,
        });
    }
    Ok(Some(out))
}

/// Translates a bus-local address through a `ranges` table. `None` when
/// the address falls outside every window (the device is not reachable
/// from the parent bus).
pub fn translate(address: u128, ranges: &[RangeEntry]) -> Option<u128> {
    if ranges.is_empty() {
        return Some(address); // empty ranges = identity
    }
    for r in ranges {
        if address >= r.child_base && address - r.child_base < r.size {
            // Saturating: a window whose parent side sits at the top of
            // the address space must not wrap the translated address
            // back to zero (that would manufacture phantom collisions).
            return Some(r.parent_base.saturating_add(address - r.child_base));
        }
    }
    None
}

/// Like [`collect_regions`], but translates every region through the
/// `ranges` tables of its ancestor buses, yielding CPU-visible absolute
/// addresses. Regions on buses without a `ranges` property are skipped
/// (not addressable from the root — e.g. `cpus` unit numbers), matching
/// the kernel's `of_translate_address` behaviour.
///
/// # Errors
///
/// Propagates decoding errors from `reg` and `ranges` properties.
pub fn collect_regions_translated(tree: &DeviceTree) -> Result<Vec<DeviceRegions>, DtsError> {
    #[derive(Clone)]
    enum Xlat {
        /// Compose these range tables innermost-first.
        Tables(Vec<Vec<RangeEntry>>),
        /// Some ancestor bus has no ranges: not root-addressable.
        Opaque,
    }

    fn rec(
        node: &Node,
        path: &NodePath,
        parent_cells: (u32, u32),
        xlat: &Xlat,
        out: &mut Vec<DeviceRegions>,
    ) -> Result<(), DtsError> {
        let here = if node.name.is_empty() {
            NodePath::root()
        } else {
            path.join(&node.name)
        };
        if node.prop("reg").is_some() {
            if let Xlat::Tables(tables) = xlat {
                let regions = decode_reg(&here, node, parent_cells.0, parent_cells.1)?;
                let mut translated = Vec::new();
                let mut all_ok = true;
                for r in &regions {
                    let mut addr = Some(r.address);
                    for table in tables {
                        addr = addr.and_then(|a| translate(a, table));
                    }
                    match addr {
                        Some(a) => translated.push(RegEntry {
                            address: a,
                            size: r.size,
                        }),
                        None => all_ok = false,
                    }
                }
                if all_ok {
                    out.push(DeviceRegions {
                        path: here.clone(),
                        device_type: node.prop_str("device_type").map(str::to_string),
                        regions: translated,
                        cells: parent_cells,
                    });
                }
            }
        }
        // Compute the child translation state.
        let child_xlat = if node.name.is_empty() {
            // The root bus needs no translation.
            Xlat::Tables(Vec::new())
        } else {
            match (xlat, decode_ranges(&here, node, parent_cells.0)?) {
                (Xlat::Opaque, _) => Xlat::Opaque,
                (Xlat::Tables(tables), Some(table)) => {
                    let mut t = vec![table];
                    t.extend(tables.iter().cloned());
                    Xlat::Tables(t)
                }
                (Xlat::Tables(_), None) => Xlat::Opaque,
            }
        };
        let my_cells = checked_cell_counts(&here, node)?;
        for c in &node.children {
            rec(c, &here, my_cells, &child_xlat, out)?;
        }
        Ok(())
    }

    let mut out = Vec::new();
    rec(
        &tree.root,
        &NodePath::root(),
        (DEFAULT_ADDRESS_CELLS, DEFAULT_SIZE_CELLS),
        &Xlat::Tables(Vec::new()),
        &mut out,
    )?;
    Ok(out)
}

/// Checks that every node's `@unit-address` matches the first `reg`
/// address, a well-formedness rule `dtc -W` warns about. Returns the
/// paths that violate it.
pub fn unit_address_mismatches(tree: &DeviceTree) -> Vec<NodePath> {
    let Ok(devices) = collect_regions(tree) else {
        return Vec::new();
    };
    let mut bad = Vec::new();
    for d in devices {
        let Some(node) = tree.find_path(&d.path) else {
            continue;
        };
        let Some(unit) = node.unit_address() else {
            continue;
        };
        let Ok(unit_val) = u128::from_str_radix(unit, 16) else {
            continue;
        };
        if let Some(first) = d.regions.first() {
            if first.address != unit_val {
                bad.push(d.path.clone());
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn reg_entry_overlap() {
        let a = RegEntry::new(0x4000_0000, 0x2000_0000);
        let b = RegEntry::new(0x6000_0000, 0x2000_0000);
        assert!(!a.overlaps(&b));
        let c = RegEntry::new(0x5000_0000, 0x2000_0000);
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
        let empty = RegEntry::new(0x4000_0000, 0);
        assert!(!a.overlaps(&empty));
        assert_eq!(a.end(), 0x6000_0000);
    }

    #[test]
    fn decode_64bit_memory() {
        // The running example: 2+2 cells, two banks.
        let t = parse(
            r#"/ {
                #address-cells = <2>;
                #size-cells = <2>;
                memory@40000000 {
                    reg = <0x0 0x40000000 0x0 0x20000000
                           0x0 0x60000000 0x0 0x20000000>;
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions(&t).unwrap();
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].cells, (2, 2));
        assert_eq!(
            devs[0].regions,
            vec![
                RegEntry::new(0x4000_0000, 0x2000_0000),
                RegEntry::new(0x6000_0000, 0x2000_0000),
            ]
        );
    }

    #[test]
    fn truncation_misparse_from_the_paper() {
        // §IV-C: root switched to 1+1 cells by delta d3 but the memory
        // node still carries 64-bit-shaped data -> four banks, one at 0.
        let t = parse(
            r#"/ {
                #address-cells = <1>;
                #size-cells = <1>;
                memory@40000000 {
                    reg = <0x0 0x40000000 0x0 0x20000000
                           0x0 0x60000000 0x0 0x20000000>;
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions(&t).unwrap();
        let banks = &devs[0].regions;
        assert_eq!(banks.len(), 4, "four banks found instead of two");
        assert_eq!(banks[0], RegEntry::new(0x0, 0x4000_0000));
        assert_eq!(banks[2], RegEntry::new(0x0, 0x6000_0000));
        assert!(banks[0].overlaps(&banks[2]), "collision at address 0x0");
    }

    #[test]
    fn cpu_reg_with_zero_size_cells() {
        let t = parse(
            r#"/ {
                cpus {
                    #address-cells = <0x1>;
                    #size-cells = <0x0>;
                    cpu@0 { reg = <0x0>; };
                    cpu@1 { reg = <0x1>; };
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions(&t).unwrap();
        assert_eq!(devs.len(), 2);
        assert_eq!(devs[0].regions, vec![RegEntry::new(0, 0)]);
        assert_eq!(devs[1].regions, vec![RegEntry::new(1, 0)]);
    }

    #[test]
    fn defaults_apply_when_unspecified() {
        let t = parse("/ { uart@20000000 { reg = <0x0 0x20000000 0x1000>; }; };").unwrap();
        // Default 2+1 cells: one entry.
        let devs = collect_regions(&t).unwrap();
        assert_eq!(devs[0].cells, (2, 1));
        assert_eq!(devs[0].regions, vec![RegEntry::new(0x2000_0000, 0x1000)]);
    }

    #[test]
    fn arity_error_detected() {
        let t = parse(
            r#"/ {
                #address-cells = <2>;
                #size-cells = <2>;
                memory@40000000 { reg = <0x0 0x40000000 0x0>; };
            };"#,
        )
        .unwrap();
        let err = collect_regions(&t).unwrap_err();
        assert!(matches!(err, DtsError::BadValue { .. }));
        assert!(err.to_string().contains("multiple"));
    }

    #[test]
    fn unresolved_ref_in_reg_rejected() {
        let t = parse("/ { x@0 { reg = <&foo 0x1000>; }; };").unwrap();
        assert!(collect_regions(&t).is_err());
    }

    #[test]
    fn unit_address_check() {
        let t = parse(
            r#"/ {
                #address-cells = <1>;
                #size-cells = <1>;
                uart@20000000 { reg = <0x20000000 0x1000>; };
                bad@30000000 { reg = <0x40000000 0x1000>; };
            };"#,
        )
        .unwrap();
        let bad = unit_address_mismatches(&t);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].to_string(), "/bad@30000000");
    }

    #[test]
    fn ranges_identity_when_empty() {
        let t = parse(
            r#"/ {
                #address-cells = <1>;
                #size-cells = <1>;
                soc {
                    #address-cells = <1>;
                    #size-cells = <1>;
                    ranges;
                    uart@1000 { reg = <0x1000 0x100>; };
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions_translated(&t).unwrap();
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].regions, vec![RegEntry::new(0x1000, 0x100)]);
    }

    #[test]
    fn ranges_offset_translation() {
        // The soc bus maps child 0x0..0x10000 to parent 0xf000_0000.
        let t = parse(
            r#"/ {
                #address-cells = <1>;
                #size-cells = <1>;
                soc {
                    #address-cells = <1>;
                    #size-cells = <1>;
                    ranges = <0x0 0xf0000000 0x10000>;
                    uart@1000 { reg = <0x1000 0x100>; };
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions_translated(&t).unwrap();
        assert_eq!(devs[0].regions, vec![RegEntry::new(0xf000_1000, 0x100)]);
    }

    #[test]
    fn ranges_mixed_cell_widths() {
        // 64-bit root, 32-bit soc bus: ranges entries are
        // child(1) + parent(2) + size(1) = 4 cells.
        let t = parse(
            r#"/ {
                #address-cells = <2>;
                #size-cells = <2>;
                soc {
                    #address-cells = <1>;
                    #size-cells = <1>;
                    ranges = <0x0 0x1 0x00000000 0x10000>;
                    dev@2000 { reg = <0x2000 0x100>; };
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions_translated(&t).unwrap();
        assert_eq!(devs[0].regions, vec![RegEntry::new(0x1_0000_2000, 0x100)]);
    }

    #[test]
    fn nested_ranges_compose() {
        let t = parse(
            r#"/ {
                #address-cells = <1>;
                #size-cells = <1>;
                soc {
                    #address-cells = <1>;
                    #size-cells = <1>;
                    ranges = <0x0 0x40000000 0x1000000>;
                    apb {
                        #address-cells = <1>;
                        #size-cells = <1>;
                        ranges = <0x0 0x100000 0x10000>;
                        timer@40 { reg = <0x40 0x20>; };
                    };
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions_translated(&t).unwrap();
        let timer = devs
            .iter()
            .find(|d| d.path.to_string().ends_with("timer@40"))
            .unwrap();
        assert_eq!(timer.regions, vec![RegEntry::new(0x4010_0040, 0x20)]);
    }

    #[test]
    fn missing_ranges_makes_bus_opaque() {
        // cpus has no ranges: the cpu unit numbers are not addresses
        // and must not leak into the root address map.
        let t = parse(
            r#"/ {
                #address-cells = <1>;
                #size-cells = <1>;
                memory@80000000 { reg = <0x80000000 0x1000>; };
                cpus {
                    #address-cells = <1>;
                    #size-cells = <0>;
                    cpu@0 { reg = <0x0>; };
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions_translated(&t).unwrap();
        assert_eq!(devs.len(), 1);
        assert!(devs[0].path.to_string().contains("memory"));
    }

    #[test]
    fn address_outside_every_window_drops_device() {
        let t = parse(
            r#"/ {
                #address-cells = <1>;
                #size-cells = <1>;
                soc {
                    #address-cells = <1>;
                    #size-cells = <1>;
                    ranges = <0x0 0xf0000000 0x1000>;
                    ghost@8000 { reg = <0x8000 0x100>; };
                };
            };"#,
        )
        .unwrap();
        let devs = collect_regions_translated(&t).unwrap();
        assert!(devs.is_empty());
    }

    #[test]
    fn bad_ranges_arity_rejected() {
        let t = parse(
            r#"/ {
                #address-cells = <1>;
                #size-cells = <1>;
                soc {
                    #address-cells = <1>;
                    #size-cells = <1>;
                    ranges = <0x0 0xf0000000>;
                    dev@0 { reg = <0x0 0x10>; };
                };
            };"#,
        )
        .unwrap();
        assert!(collect_regions_translated(&t).is_err());
    }

    #[test]
    fn translate_helper() {
        let table = vec![RangeEntry {
            child_base: 0x100,
            parent_base: 0x1000,
            size: 0x100,
        }];
        assert_eq!(translate(0x100, &table), Some(0x1000));
        assert_eq!(translate(0x1ff, &table), Some(0x10ff));
        assert_eq!(translate(0x200, &table), None);
        assert_eq!(translate(0xdead, &[]), Some(0xdead));
    }

    #[test]
    fn take_cells_concatenates_big_endian() {
        assert_eq!(take_cells(&[0x1, 0x2], 2), 0x1_0000_0002);
        assert_eq!(take_cells(&[0xdead_beef], 1), 0xdead_beef);
    }

    #[test]
    fn huge_address_cells_rejected_not_overflowed() {
        // Regression: `(address_cells + size_cells) as usize` used to
        // overflow u32 (debug panic) for #address-cells = <0xffffffff>.
        let t = parse(
            r#"/ {
                #address-cells = <0xffffffff>;
                #size-cells = <1>;
                dev@0 { reg = <0x0 0x10>; };
            };"#,
        )
        .unwrap();
        let err = collect_regions(&t).unwrap_err();
        match &err {
            DtsError::BadValue { path, message } => {
                assert_eq!(path, "/");
                assert!(message.contains("#address-cells"), "{message}");
                assert!(message.contains("0..=4"), "{message}");
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn five_cell_addresses_rejected_not_truncated() {
        // Regression: take_cells silently dropped the high cell of a
        // 5-cell address — the truncation class the paper targets.
        let t = parse(
            r#"/ {
                #address-cells = <5>;
                #size-cells = <1>;
                dev@0 { reg = <0x1 0x0 0x0 0x0 0x0 0x10>; };
            };"#,
        )
        .unwrap();
        let err = collect_regions(&t).unwrap_err();
        assert!(
            matches!(&err, DtsError::BadValue { path, .. } if path == "/"),
            "{err:?}"
        );
        // Same guard on the direct decode entry point.
        let t2 = parse("/ { dev@0 { reg = <0x0 0x10>; }; };").unwrap();
        let node = t2.find("/dev@0").unwrap();
        let r = decode_reg(&NodePath::root().join("dev@0"), node, 5, 1);
        assert!(r.is_err());
    }

    #[test]
    fn region_end_saturates_instead_of_wrapping() {
        // Regression: end() overflowed u128 for 4-cell regions near the
        // top of the address space (debug panic, bogus overlap in
        // release).
        let top = RegEntry::new(u128::MAX - 0xfff, 0x2000);
        assert_eq!(top.end(), u128::MAX);
        assert!(top.wraps());
        let sane = RegEntry::new(0x4000_0000, 0x1000);
        assert!(!sane.wraps());
        // overlaps stays total and meaningful against a wrapping region.
        assert!(top.overlaps(&RegEntry::new(u128::MAX - 1, 1)));
        assert!(!top.overlaps(&sane));
    }

    #[test]
    fn translate_saturates_at_address_space_end() {
        let table = vec![RangeEntry {
            child_base: 0x0,
            parent_base: u128::MAX - 0x10,
            size: 0x100,
        }];
        assert_eq!(translate(0x20, &table), Some(u128::MAX));
    }

    #[test]
    fn checked_cell_counts_accepts_spec_range() {
        for ac in 0..=4u32 {
            let t = parse(&format!(
                "/ {{ #address-cells = <{ac}>; #size-cells = <2>; }};"
            ))
            .unwrap();
            assert!(checked_cell_counts(&NodePath::root(), &t.root).is_ok());
        }
    }
}

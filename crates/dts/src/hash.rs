//! Stable content hashing of parsed artifacts.
//!
//! The `llhsc-service` daemon keys its incremental result cache on
//! hashes of every input artifact (trees, schemas, selections). The
//! default [`std::collections::hash_map::RandomState`] hasher is
//! randomly seeded per process and therefore useless as a *stable*
//! content address, so this module provides a fixed-seed 64-bit
//! FNV-1a hasher: deterministic across runs, dependency-free, and fast
//! enough to hash a derived tree in microseconds.
//!
//! The hashes are **not** cryptographic — they address an in-memory
//! cache, not untrusted storage — and are not guaranteed stable across
//! versions of this workspace (struct layout changes change them).

use std::hash::{Hash, Hasher};

use crate::tree::DeviceTree;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`] with a fixed seed.
///
/// Feed it any `Hash` type; unlike `DefaultHasher` the result is the
/// same in every process, which is what a content-addressed cache key
/// needs.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher in the initial (offset-basis) state.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes any `Hash` value with the stable [`Fnv1a`] hasher.
///
/// ```
/// let a = llhsc_dts::hash::stable_hash_of(&("llhsc", 7u32));
/// let b = llhsc_dts::hash::stable_hash_of(&("llhsc", 7u32));
/// assert_eq!(a, b);
/// ```
pub fn stable_hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv1a::new();
    value.hash(&mut h);
    h.finish()
}

impl DeviceTree {
    /// A stable content hash of the whole tree: nodes, properties,
    /// labels, reservations and the version tag. Structurally equal
    /// trees hash equally regardless of how they were produced (parsed,
    /// derived, decompiled).
    pub fn stable_hash(&self) -> u64 {
        stable_hash_of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn known_vector() {
        // FNV-1a("a") from the reference implementation's test suite.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn equal_trees_hash_equal() {
        let src = "/ { uart@1000 { reg = <0x1000 0x100>; }; };";
        let a = parse(src).unwrap();
        let b = parse(src).unwrap();
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn different_trees_hash_differently() {
        let a = parse("/ { uart@1000 { reg = <0x1000 0x100>; }; };").unwrap();
        let b = parse("/ { uart@1000 { reg = <0x1000 0x200>; }; };").unwrap();
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn print_parse_round_trip_preserves_hash() {
        let a = parse("/dts-v1/;\n/ { x { compatible = \"veth\"; }; };").unwrap();
        let b = parse(&crate::print(&a)).unwrap();
        assert_eq!(a.stable_hash(), b.stable_hash());
    }
}

//! Flattened DeviceTree blob (DTB) encoding and decoding, version 17.
//!
//! Stands in for `dtc -O dtb` / `dtc -I dtb`: the binary ABI through
//! which an OS or hypervisor (Bao, Linux) consumes the tree at boot.
//! Layout per the DeviceTree specification chapter 5: a header, a memory
//! reservation block, a structure block of `BEGIN_NODE`/`PROP`/
//! `END_NODE` tokens, and a deduplicated strings block.

use std::collections::BTreeMap;

use crate::tree::{DeviceTree, Node, PropValue, Property};

/// The FDT magic number.
pub const FDT_MAGIC: u32 = 0xd00d_feed;
/// Blob format version emitted by [`encode`].
pub const FDT_VERSION: u32 = 17;
const FDT_LAST_COMP_VERSION: u32 = 16;

const FDT_BEGIN_NODE: u32 = 1;
const FDT_END_NODE: u32 = 2;
const FDT_PROP: u32 = 3;
const FDT_NOP: u32 = 4;
const FDT_END: u32 = 9;

/// Errors produced while decoding a blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdtError {
    /// The magic number was wrong.
    BadMagic(u32),
    /// The blob is truncated or an offset points outside it.
    Truncated,
    /// An unknown structure token was encountered.
    BadToken(u32),
    /// A string (node name, property name or value) was not valid UTF-8.
    BadString,
    /// The structure block was malformed (unbalanced nodes, missing END).
    Malformed(&'static str),
}

impl std::fmt::Display for FdtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdtError::BadMagic(m) => write!(f, "bad FDT magic {m:#010x}"),
            FdtError::Truncated => write!(f, "truncated FDT blob"),
            FdtError::BadToken(t) => write!(f, "unknown FDT token {t}"),
            FdtError::BadString => write!(f, "non-UTF-8 string in FDT blob"),
            FdtError::Malformed(m) => write!(f, "malformed FDT structure: {m}"),
        }
    }
}

impl std::error::Error for FdtError {}

fn align4(v: &mut Vec<u8>) {
    while !v.len().is_multiple_of(4) {
        v.push(0);
    }
}

/// Encodes a tree as a DTB v17 blob.
///
/// `&label` references inside cell lists are resolved to phandles (one
/// is allocated per labelled node, and a `phandle` property is
/// materialised on each referenced node).
pub fn encode(tree: &DeviceTree) -> Vec<u8> {
    let phandles = tree.phandle_map();

    // Strings block with deduplication.
    let mut strings: Vec<u8> = Vec::new();
    let mut string_off: BTreeMap<String, u32> = BTreeMap::new();
    let mut intern = |name: &str, strings: &mut Vec<u8>, map: &mut BTreeMap<String, u32>| -> u32 {
        if let Some(&off) = map.get(name) {
            return off;
        }
        let off = strings.len() as u32;
        strings.extend_from_slice(name.as_bytes());
        strings.push(0);
        map.insert(name.to_string(), off);
        off
    };

    // Structure block.
    let mut structure: Vec<u8> = Vec::new();
    fn emit_node(
        node: &Node,
        phandles: &BTreeMap<String, u32>,
        structure: &mut Vec<u8>,
        strings: &mut Vec<u8>,
        string_off: &mut BTreeMap<String, u32>,
        intern: &mut impl FnMut(&str, &mut Vec<u8>, &mut BTreeMap<String, u32>) -> u32,
    ) {
        structure.extend_from_slice(&FDT_BEGIN_NODE.to_be_bytes());
        structure.extend_from_slice(node.name.as_bytes());
        structure.push(0);
        align4(structure);

        let mut props: Vec<(String, Vec<u8>)> = Vec::new();
        for p in &node.properties {
            props.push((p.name.clone(), prop_bytes(p, phandles)));
        }
        // Materialise a phandle property for labelled nodes.
        if let Some(ph) = node.labels.iter().find_map(|l| phandles.get(l)) {
            if node.prop("phandle").is_none() {
                props.push(("phandle".to_string(), ph.to_be_bytes().to_vec()));
            }
        }
        for (name, bytes) in props {
            structure.extend_from_slice(&FDT_PROP.to_be_bytes());
            structure.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            let off = intern(&name, strings, string_off);
            structure.extend_from_slice(&off.to_be_bytes());
            structure.extend_from_slice(&bytes);
            align4(structure);
        }
        for c in &node.children {
            emit_node(c, phandles, structure, strings, string_off, intern);
        }
        structure.extend_from_slice(&FDT_END_NODE.to_be_bytes());
    }
    emit_node(
        &tree.root,
        &phandles,
        &mut structure,
        &mut strings,
        &mut string_off,
        &mut intern,
    );
    structure.extend_from_slice(&FDT_END.to_be_bytes());

    // Memory reservation block (terminated by a zero entry).
    let mut rsvmap: Vec<u8> = Vec::new();
    for &(addr, size) in &tree.reservations {
        rsvmap.extend_from_slice(&addr.to_be_bytes());
        rsvmap.extend_from_slice(&size.to_be_bytes());
    }
    rsvmap.extend_from_slice(&0u64.to_be_bytes());
    rsvmap.extend_from_slice(&0u64.to_be_bytes());

    // Assemble: header (40 bytes) | rsvmap | structure | strings.
    let header_len = 40u32;
    let off_rsvmap = header_len;
    let off_struct = off_rsvmap + rsvmap.len() as u32;
    let off_strings = off_struct + structure.len() as u32;
    let total = off_strings + strings.len() as u32;

    let mut out = Vec::with_capacity(total as usize);
    for word in [
        FDT_MAGIC,
        total,
        off_struct,
        off_strings,
        off_rsvmap,
        FDT_VERSION,
        FDT_LAST_COMP_VERSION,
        0, // boot_cpuid_phys
        strings.len() as u32,
        structure.len() as u32,
    ] {
        out.extend_from_slice(&word.to_be_bytes());
    }
    out.extend_from_slice(&rsvmap);
    out.extend_from_slice(&structure);
    out.extend_from_slice(&strings);
    out
}

/// Serialises one property to its FDT byte form, resolving references
/// through the phandle map.
fn prop_bytes(p: &Property, phandles: &BTreeMap<String, u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for v in &p.values {
        match v {
            PropValue::Cells(cells) => {
                for c in cells {
                    let raw = match c {
                        crate::tree::Cell::U32(x) => *x,
                        crate::tree::Cell::Ref(l) => phandles.get(l).copied().unwrap_or(0),
                    };
                    out.extend_from_slice(&raw.to_be_bytes());
                }
            }
            PropValue::Str(s) => {
                out.extend_from_slice(s.as_bytes());
                out.push(0);
            }
            PropValue::Bytes(bs) => out.extend_from_slice(bs),
            PropValue::Ref(l) => {
                let raw = phandles.get(l).copied().unwrap_or(0);
                out.extend_from_slice(&raw.to_be_bytes());
            }
        }
    }
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, FdtError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FdtError> {
        let hi = self.u32()? as u64;
        let lo = self.u32()? as u64;
        Ok((hi << 32) | lo)
    }

    fn cstr(&mut self) -> Result<String, FdtError> {
        let start = self.pos;
        while *self.data.get(self.pos).ok_or(FdtError::Truncated)? != 0 {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.data[start..self.pos])
            .map_err(|_| FdtError::BadString)?
            .to_string();
        self.pos += 1; // NUL
        Ok(s)
    }

    fn align4(&mut self) {
        self.pos = (self.pos + 3) & !3;
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FdtError> {
        // checked_add: `pos` and `n` both derive from untrusted header
        // words, so the sum must not be allowed to wrap.
        let end = self.pos.checked_add(n).ok_or(FdtError::Truncated)?;
        let b = self.data.get(self.pos..end).ok_or(FdtError::Truncated)?;
        self.pos = end;
        Ok(b)
    }
}

/// Decodes a DTB blob back into a tree.
///
/// Property values come back as raw [`PropValue::Bytes`] — the blob
/// format does not retain value typing. Encoding the result again
/// yields a byte-identical structure block, which the round-trip
/// property test checks.
///
/// # Errors
///
/// Returns an [`FdtError`] for malformed input.
pub fn decode(blob: &[u8]) -> Result<DeviceTree, FdtError> {
    let mut r = Reader { data: blob, pos: 0 };
    let magic = r.u32()?;
    if magic != FDT_MAGIC {
        return Err(FdtError::BadMagic(magic));
    }
    let _total = r.u32()?;
    let off_struct = r.u32()? as usize;
    let off_strings = r.u32()? as usize;
    let off_rsvmap = r.u32()? as usize;
    let _version = r.u32()?;
    let _last_comp = r.u32()?;
    let _boot_cpu = r.u32()?;
    let _size_strings = r.u32()?;
    let _size_struct = r.u32()?;

    // Reservations.
    let mut tree = DeviceTree {
        has_version_tag: true,
        ..DeviceTree::default()
    };
    let mut rr = Reader {
        data: blob,
        pos: off_rsvmap,
    };
    loop {
        let addr = rr.u64()?;
        let size = rr.u64()?;
        if addr == 0 && size == 0 {
            break;
        }
        tree.reservations.push((addr, size));
    }

    let strings = blob.get(off_strings..).ok_or(FdtError::Truncated)?;
    let prop_name = |off: u32| -> Result<String, FdtError> {
        let s = strings.get(off as usize..).ok_or(FdtError::Truncated)?;
        let end = s.iter().position(|&b| b == 0).ok_or(FdtError::Truncated)?;
        std::str::from_utf8(&s[..end])
            .map(str::to_string)
            .map_err(|_| FdtError::BadString)
    };

    let mut sr = Reader {
        data: blob,
        pos: off_struct,
    };
    let mut stack: Vec<Node> = Vec::new();
    loop {
        let token = sr.u32()?;
        match token {
            FDT_BEGIN_NODE => {
                // Same ceiling as the DTS parser: decoded trees feed
                // the same recursive printers and walkers, so a blob
                // must not smuggle in nesting the text path rejects.
                if stack.len() >= crate::parser::MAX_NODE_DEPTH {
                    return Err(FdtError::Malformed("node nesting too deep"));
                }
                let name = sr.cstr()?;
                sr.align4();
                stack.push(Node::new(&name));
            }
            FDT_END_NODE => {
                let done = stack
                    .pop()
                    .ok_or(FdtError::Malformed("unbalanced END_NODE"))?;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => {
                        tree.root = done;
                        // Expect FDT_END (possibly after NOPs).
                        loop {
                            match sr.u32()? {
                                FDT_NOP => continue,
                                FDT_END => return Ok(tree),
                                t => return Err(FdtError::BadToken(t)),
                            }
                        }
                    }
                }
            }
            FDT_PROP => {
                let len = sr.u32()? as usize;
                let name_off = sr.u32()?;
                let raw = sr.bytes(len)?.to_vec();
                sr.align4();
                let name = prop_name(name_off)?;
                let node = stack
                    .last_mut()
                    .ok_or(FdtError::Malformed("property outside node"))?;
                node.properties.push(Property {
                    name,
                    values: if raw.is_empty() {
                        Vec::new()
                    } else {
                        vec![PropValue::Bytes(raw)]
                    },
                });
            }
            FDT_NOP => {}
            FDT_END => {
                return Err(FdtError::Malformed("END before root completed"));
            }
            t => return Err(FdtError::BadToken(t)),
        }
    }
}

/// Decodes a blob and re-types property values heuristically: a value
/// that looks like one or more NUL-terminated printable strings becomes
/// [`PropValue::Str`] values, a multiple of 4 bytes becomes a cell
/// list, anything else stays raw bytes. This is what `dtc -I dtb -O
/// dts` does to make decompiled sources readable; the raw-preserving
/// [`decode`] remains the round-trip-exact API.
///
/// # Errors
///
/// Same conditions as [`decode`].
pub fn decode_typed(blob: &[u8]) -> Result<DeviceTree, FdtError> {
    let mut tree = decode(blob)?;
    fn retype(node: &mut Node) {
        for p in &mut node.properties {
            let raw: Vec<u8> = match p.values.as_slice() {
                [PropValue::Bytes(b)] => b.clone(),
                _ => continue,
            };
            if let Some(strings) = as_string_list(&raw) {
                p.values = strings.into_iter().map(PropValue::Str).collect();
            } else if raw.len().is_multiple_of(4) && !raw.is_empty() {
                let cells: Vec<crate::tree::Cell> = raw
                    .chunks(4)
                    .map(|c| crate::tree::Cell::U32(u32::from_be_bytes([c[0], c[1], c[2], c[3]])))
                    .collect();
                p.values = vec![PropValue::Cells(cells)];
            }
        }
        for c in &mut node.children {
            retype(c);
        }
    }
    retype(&mut tree.root);
    Ok(tree)
}

/// Interprets bytes as a list of NUL-terminated printable strings.
fn as_string_list(raw: &[u8]) -> Option<Vec<String>> {
    if raw.last() != Some(&0) || raw.len() < 2 {
        return None;
    }
    let mut out = Vec::new();
    for part in raw[..raw.len() - 1].split(|&b| b == 0) {
        if part.is_empty() {
            return None;
        }
        if !part.iter().all(|&b| (0x20..0x7f).contains(&b)) {
            return None;
        }
        out.push(String::from_utf8(part.to_vec()).ok()?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::tree::Cell;

    fn sample() -> DeviceTree {
        parse(
            r#"/dts-v1/;
            / {
                #address-cells = <2>;
                #size-cells = <2>;
                model = "custom-sbc";
                memory@40000000 {
                    device_type = "memory";
                    reg = <0x0 0x40000000 0x0 0x20000000>;
                };
                cpus {
                    #address-cells = <1>;
                    #size-cells = <0>;
                    cpu@0 { compatible = "arm,cortex-a53"; reg = <0x0>; };
                };
            };"#,
        )
        .unwrap()
    }

    #[test]
    fn header_fields() {
        let blob = encode(&sample());
        assert_eq!(
            u32::from_be_bytes([blob[0], blob[1], blob[2], blob[3]]),
            FDT_MAGIC
        );
        let total = u32::from_be_bytes([blob[4], blob[5], blob[6], blob[7]]);
        assert_eq!(total as usize, blob.len());
        let version = u32::from_be_bytes([blob[20], blob[21], blob[22], blob[23]]);
        assert_eq!(version, 17);
    }

    #[test]
    fn decode_recovers_structure() {
        let t = sample();
        let blob = encode(&t);
        let back = decode(&blob).unwrap();
        assert_eq!(back.size(), t.size());
        let mem = back.find("/memory@40000000").unwrap();
        // Values come back as raw bytes.
        assert_eq!(
            mem.prop("device_type").unwrap().values,
            vec![PropValue::Bytes(b"memory\0".to_vec())]
        );
        let reg = mem.prop("reg").unwrap();
        assert_eq!(
            reg.values,
            vec![PropValue::Bytes(vec![
                0, 0, 0, 0, 0x40, 0, 0, 0, 0, 0, 0, 0, 0x20, 0, 0, 0
            ])]
        );
    }

    #[test]
    fn encode_decode_encode_is_stable() {
        let t = sample();
        let b1 = encode(&t);
        let t2 = decode(&b1).unwrap();
        let b2 = encode(&t2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn phandles_resolve_references() {
        let t = parse(
            r#"/ {
                intc: pic@10000000 { };
                uart@20000000 { interrupt-parent = <&intc>; };
            };"#,
        )
        .unwrap();
        let blob = encode(&t);
        let back = decode(&blob).unwrap();
        let pic = back.find("/pic@10000000").unwrap();
        let ph = match &pic.prop("phandle").unwrap().values[0] {
            PropValue::Bytes(b) => u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(ph, 1);
        let uart = back.find("/uart@20000000").unwrap();
        match &uart.prop("interrupt-parent").unwrap().values[0] {
            PropValue::Bytes(b) => {
                assert_eq!(u32::from_be_bytes([b[0], b[1], b[2], b[3]]), ph);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reservations_roundtrip() {
        let mut t = sample();
        t.reservations.push((0x1000, 0x4000));
        t.reservations.push((0x8000, 0x100));
        let back = decode(&encode(&t)).unwrap();
        assert_eq!(back.reservations, vec![(0x1000, 0x4000), (0x8000, 0x100)]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = encode(&sample());
        blob[0] = 0;
        assert!(matches!(decode(&blob), Err(FdtError::BadMagic(_))));
    }

    #[test]
    fn truncation_rejected() {
        let blob = encode(&sample());
        for cut in [8, 40, blob.len() / 2] {
            assert!(decode(&blob[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn flag_property_is_empty_not_missing() {
        let t = parse("/ { chosen { ranges; }; };").unwrap();
        let back = decode(&encode(&t)).unwrap();
        let chosen = back.find("/chosen").unwrap();
        let p = chosen.prop("ranges").unwrap();
        assert!(p.values.is_empty());
    }

    #[test]
    fn decode_typed_recovers_value_kinds() {
        let t = sample();
        let blob = encode(&t);
        let typed = decode_typed(&blob).unwrap();
        let mem = typed.find("/memory@40000000").unwrap();
        assert_eq!(mem.prop_str("device_type"), Some("memory"));
        assert_eq!(
            mem.prop("reg").unwrap().flat_cells().unwrap(),
            vec![0, 0x4000_0000, 0, 0x2000_0000]
        );
        // The typed tree prints to readable DTS that reparses.
        let text = crate::printer::print(&typed);
        assert!(text.contains("device_type = \"memory\";"));
        assert!(crate::parser::parse(&text).is_ok());
    }

    #[test]
    fn decode_typed_string_lists() {
        let t = parse(r#"/ { compatible = "vendor,board", "generic"; };"#).unwrap();
        let typed = decode_typed(&encode(&t)).unwrap();
        let p = typed.root.prop("compatible").unwrap();
        assert_eq!(
            p.values,
            vec![
                PropValue::Str("vendor,board".into()),
                PropValue::Str("generic".into())
            ]
        );
    }

    #[test]
    fn decode_typed_keeps_odd_bytes_raw() {
        let mut t = DeviceTree::new();
        t.ensure("/x").set_prop(Property {
            name: "blob".into(),
            values: vec![PropValue::Bytes(vec![1, 2, 3])],
        });
        let typed = decode_typed(&encode(&t)).unwrap();
        assert_eq!(
            typed.find("/x").unwrap().prop("blob").unwrap().values,
            vec![PropValue::Bytes(vec![1, 2, 3])]
        );
    }

    #[test]
    fn deeply_nested_blob_rejected() {
        // A structure block of nothing but BEGIN_NODE tokens must hit
        // the depth ceiling, not exhaust the stack in a later walk.
        let mut structure: Vec<u8> = Vec::new();
        for _ in 0..(crate::parser::MAX_NODE_DEPTH + 8) {
            structure.extend_from_slice(&FDT_BEGIN_NODE.to_be_bytes());
            structure.extend_from_slice(b"n\0\0\0");
        }
        let mut rsvmap = Vec::new();
        rsvmap.extend_from_slice(&[0u8; 16]);
        let off_struct = 40 + rsvmap.len() as u32;
        let off_strings = off_struct + structure.len() as u32;
        let mut blob = Vec::new();
        for word in [
            FDT_MAGIC,
            off_strings,
            off_struct,
            off_strings,
            40,
            FDT_VERSION,
            FDT_LAST_COMP_VERSION,
            0,
            0,
            structure.len() as u32,
        ] {
            blob.extend_from_slice(&word.to_be_bytes());
        }
        blob.extend_from_slice(&rsvmap);
        blob.extend_from_slice(&structure);
        assert_eq!(
            decode(&blob),
            Err(FdtError::Malformed("node nesting too deep"))
        );
    }

    #[test]
    fn ref_cells_unknown_label_encodes_zero() {
        let mut t = DeviceTree::new();
        let n = t.ensure("/x");
        n.set_prop(Property {
            name: "link".into(),
            values: vec![PropValue::Cells(vec![Cell::Ref("ghost".into())])],
        });
        let back = decode(&encode(&t)).unwrap();
        match &back.find("/x").unwrap().prop("link").unwrap().values[0] {
            PropValue::Bytes(b) => assert_eq!(b, &vec![0, 0, 0, 0]),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! DeviceTree source (DTS) parsing, printing, manipulation and FDT blob
//! encoding — the `dtc`-shaped substrate of the `llhsc` reproduction.
//!
//! The paper's tool consumes and produces DeviceTree *source* files
//! (Listing 1, Listing 2), resolves `/include/` directives ("the
//! description of the cluster is stored on the file `cpus.dtsi`"), and
//! its baselines (`dtc`, `dt-schema`) operate on the same format. This
//! crate provides:
//!
//! * a lexer + recursive-descent parser for the DTS grammar used in the
//!   paper (nodes with unit addresses, labels, references, cell arrays,
//!   strings, byte strings, `/include/`, `/delete-node/`,
//!   `/delete-property/`),
//! * a mutable tree model ([`DeviceTree`], [`Node`], [`Property`]) with
//!   path-based lookup and structural merging,
//! * a pretty-printer producing round-trippable DTS text,
//! * interpretation of `reg` under `#address-cells`/`#size-cells`
//!   ([`cells`]), which is where the paper's 64→32-bit truncation bug
//!   lives, and
//! * an encoder/decoder for the flattened DeviceTree blob format
//!   (DTB v17) in [`fdt`], standing in for `dtc -O dtb`.
//!
//! # Example
//!
//! ```
//! use llhsc_dts::parse;
//!
//! let tree = parse(r#"
//! /dts-v1/;
//! / {
//!     #address-cells = <2>;
//!     #size-cells = <2>;
//!     memory@40000000 {
//!         device_type = "memory";
//!         reg = <0x0 0x40000000 0x0 0x20000000>;
//!     };
//! };
//! "#)?;
//! let mem = tree.find("/memory@40000000").unwrap();
//! assert_eq!(mem.prop_str("device_type"), Some("memory"));
//! # Ok::<(), llhsc_dts::DtsError>(())
//! ```

pub mod cells;
pub mod fdt;
pub mod hash;

mod error;
mod lexer;
mod parser;
mod printer;
mod tree;

pub use error::{DtsError, Position};
pub use parser::{parse, parse_with_includes, FileProvider, MapFileProvider};
pub use printer::print;
pub use tree::{Cell, DeviceTree, Node, NodePath, PropValue, Property};

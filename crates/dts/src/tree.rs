//! The DeviceTree data model: nodes, properties, values and paths.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::DtsError;

/// One 32-bit cell inside a `< … >` list: a literal or a `&label`
/// reference (phandle).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cell {
    /// A literal 32-bit value.
    U32(u32),
    /// A reference to a labelled node, resolved to a phandle when the
    /// tree is flattened.
    Ref(String),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::U32(v) => write!(f, "{v:#x}"),
            Cell::Ref(l) => write!(f, "&{l}"),
        }
    }
}

/// One value in a property's value list (values are comma-separated in
/// source, e.g. `compatible = "a", "b";`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropValue {
    /// `< c1 c2 … >`
    Cells(Vec<Cell>),
    /// `"…"`
    Str(String),
    /// `[ aa bb … ]`
    Bytes(Vec<u8>),
    /// A bare `&label` outside a cell list.
    Ref(String),
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropValue::Cells(cs) => {
                write!(f, "<")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ">")
            }
            PropValue::Str(s) => write!(f, "{s:?}"),
            PropValue::Bytes(bs) => {
                write!(f, "[")?;
                for (i, b) in bs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{b:02x}")?;
                }
                write!(f, "]")
            }
            PropValue::Ref(l) => write!(f, "&{l}"),
        }
    }
}

/// A property: a name and zero or more values. A property with no values
/// (`foo;`) is a Boolean flag per the DeviceTree specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Property {
    /// Property name, e.g. `#address-cells`.
    pub name: String,
    /// Value list; empty for flag properties.
    pub values: Vec<PropValue>,
}

impl Property {
    /// Creates a property holding a single cell list of `u32`s.
    pub fn cells<I: IntoIterator<Item = u32>>(name: &str, vals: I) -> Property {
        Property {
            name: name.to_string(),
            values: vec![PropValue::Cells(vals.into_iter().map(Cell::U32).collect())],
        }
    }

    /// Creates a string-valued property.
    pub fn string(name: &str, val: &str) -> Property {
        Property {
            name: name.to_string(),
            values: vec![PropValue::Str(val.to_string())],
        }
    }

    /// Creates an empty (flag) property.
    pub fn flag(name: &str) -> Property {
        Property {
            name: name.to_string(),
            values: Vec::new(),
        }
    }

    /// The property's single `u32` value, if it is exactly `<n>`.
    pub fn as_u32(&self) -> Option<u32> {
        match self.values.as_slice() {
            [PropValue::Cells(cs)] => match cs.as_slice() {
                [Cell::U32(v)] => Some(*v),
                _ => None,
            },
            _ => None,
        }
    }

    /// The property's first string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        self.values.iter().find_map(|v| match v {
            PropValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// All literal cells across all `Cells` values, flattened, or `None`
    /// if any cell is an unresolved reference or a value is not a cell
    /// list.
    pub fn flat_cells(&self) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        for v in &self.values {
            match v {
                PropValue::Cells(cs) => {
                    for c in cs {
                        match c {
                            Cell::U32(x) => out.push(*x),
                            Cell::Ref(_) => return None,
                        }
                    }
                }
                _ => return None,
            }
        }
        Some(out)
    }

    /// The property value serialised to FDT bytes (big-endian cells,
    /// NUL-terminated strings, raw bytes). References serialise as a
    /// zero cell (an unresolved phandle).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for v in &self.values {
            match v {
                PropValue::Cells(cs) => {
                    for c in cs {
                        let raw = match c {
                            Cell::U32(x) => *x,
                            Cell::Ref(_) => 0,
                        };
                        out.extend_from_slice(&raw.to_be_bytes());
                    }
                }
                PropValue::Str(s) => {
                    out.extend_from_slice(s.as_bytes());
                    out.push(0);
                }
                PropValue::Bytes(bs) => out.extend_from_slice(bs),
                PropValue::Ref(_) => out.extend_from_slice(&0u32.to_be_bytes()),
            }
        }
        out
    }
}

/// A device node: a name (with optional `@unit-address`), labels,
/// properties and children. Property and child order is preserved.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Node {
    /// Full node name including the unit address, e.g.
    /// `memory@40000000`. The root node's name is empty.
    pub name: String,
    /// Labels attached to this node (`uart0:`).
    pub labels: Vec<String>,
    /// Properties in source order.
    pub properties: Vec<Property>,
    /// Child nodes in source order.
    pub children: Vec<Node>,
}

impl Node {
    /// Creates an empty node with the given name.
    pub fn new(name: &str) -> Node {
        Node {
            name: name.to_string(),
            ..Node::default()
        }
    }

    /// The name part before `@`.
    pub fn base_name(&self) -> &str {
        self.name.split('@').next().unwrap_or("")
    }

    /// The unit address part after `@`, if present.
    pub fn unit_address(&self) -> Option<&str> {
        let mut it = self.name.splitn(2, '@');
        it.next();
        it.next()
    }

    /// Looks up a property by name.
    pub fn prop(&self, name: &str) -> Option<&Property> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Mutable property lookup.
    pub fn prop_mut(&mut self, name: &str) -> Option<&mut Property> {
        self.properties.iter_mut().find(|p| p.name == name)
    }

    /// Shorthand for `prop(name).and_then(Property::as_u32)`.
    pub fn prop_u32(&self, name: &str) -> Option<u32> {
        self.prop(name).and_then(Property::as_u32)
    }

    /// Shorthand for `prop(name).and_then(Property::as_str)`.
    pub fn prop_str(&self, name: &str) -> Option<&str> {
        self.prop(name).and_then(Property::as_str)
    }

    /// Inserts or replaces a property (by name).
    pub fn set_prop(&mut self, prop: Property) {
        match self.prop_mut(&prop.name) {
            Some(existing) => *existing = prop,
            None => self.properties.push(prop),
        }
    }

    /// Removes a property by name; returns it if present.
    pub fn remove_prop(&mut self, name: &str) -> Option<Property> {
        let i = self.properties.iter().position(|p| p.name == name)?;
        Some(self.properties.remove(i))
    }

    /// Looks up a direct child by full name, or by base name when the
    /// query contains no `@` and exactly one child matches.
    pub fn child(&self, name: &str) -> Option<&Node> {
        if let Some(c) = self.children.iter().find(|c| c.name == name) {
            return Some(c);
        }
        if !name.contains('@') {
            let mut matches = self.children.iter().filter(|c| c.base_name() == name);
            if let (Some(c), None) = (matches.next(), matches.next()) {
                return Some(c);
            }
        }
        None
    }

    /// Mutable child lookup with the same name semantics as
    /// [`Node::child`].
    pub fn child_mut(&mut self, name: &str) -> Option<&mut Node> {
        if self.children.iter().any(|c| c.name == name) {
            return self.children.iter_mut().find(|c| c.name == name);
        }
        if !name.contains('@') {
            let count = self
                .children
                .iter()
                .filter(|c| c.base_name() == name)
                .count();
            if count == 1 {
                return self.children.iter_mut().find(|c| c.base_name() == name);
            }
        }
        None
    }

    /// Gets or creates a direct child with the exact given name.
    pub fn ensure_child(&mut self, name: &str) -> &mut Node {
        let i = match self.children.iter().position(|c| c.name == name) {
            Some(i) => i,
            None => {
                self.children.push(Node::new(name));
                self.children.len() - 1
            }
        };
        &mut self.children[i]
    }

    /// Removes a direct child by name; returns it if present.
    pub fn remove_child(&mut self, name: &str) -> Option<Node> {
        let i = self.children.iter().position(|c| c.name == name)?;
        Some(self.children.remove(i))
    }

    /// Merges `other` into this node: other's properties overwrite
    /// same-named ones, children are merged recursively by name, labels
    /// are unioned. This is the semantics of writing the same node twice
    /// in DTS source (and of delta `modifies`).
    pub fn merge(&mut self, other: Node) {
        for l in other.labels {
            if !self.labels.contains(&l) {
                self.labels.push(l);
            }
        }
        for p in other.properties {
            self.set_prop(p);
        }
        for c in other.children {
            match self.children.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.merge(c),
                None => self.children.push(c),
            }
        }
    }

    /// Depth-first iteration over this node and all descendants, with
    /// each node's path.
    pub fn walk(&self) -> Vec<(NodePath, &Node)> {
        let mut out = Vec::new();
        fn rec<'a>(node: &'a Node, path: &NodePath, out: &mut Vec<(NodePath, &'a Node)>) {
            let here = if node.name.is_empty() {
                NodePath::root()
            } else {
                path.join(&node.name)
            };
            out.push((here.clone(), node));
            for c in &node.children {
                rec(c, &here, out);
            }
        }
        rec(self, &NodePath::root(), &mut out);
        out
    }

    /// Total number of nodes in this subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Node::size).sum::<usize>()
    }
}

/// An absolute node path such as `/cpus/cpu@0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodePath(Vec<String>);

impl NodePath {
    /// The root path `/`.
    pub fn root() -> NodePath {
        NodePath(Vec::new())
    }

    /// Parses a path from `/`-separated segments.
    pub fn parse(s: &str) -> NodePath {
        NodePath(
            s.split('/')
                .filter(|seg| !seg.is_empty())
                .map(str::to_string)
                .collect(),
        )
    }

    /// The path one level deeper.
    pub fn join(&self, segment: &str) -> NodePath {
        let mut v = self.0.clone();
        v.push(segment.to_string());
        NodePath(v)
    }

    /// Path segments.
    pub fn segments(&self) -> &[String] {
        &self.0
    }

    /// The parent path, or `None` for the root.
    pub fn parent(&self) -> Option<NodePath> {
        if self.0.is_empty() {
            None
        } else {
            Some(NodePath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The last segment, or `None` for the root.
    pub fn leaf(&self) -> Option<&str> {
        self.0.last().map(String::as_str)
    }

    /// `true` for the root path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "/");
        }
        for seg in &self.0 {
            write!(f, "/{seg}")?;
        }
        Ok(())
    }
}

/// A whole DeviceTree: the root node plus document-level metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DeviceTree {
    /// The root node (its `name` is empty).
    pub root: Node,
    /// Whether the source carried a `/dts-v1/;` tag.
    pub has_version_tag: bool,
    /// Memory reservation entries (`/memreserve/`), kept for FDT
    /// encoding. Each entry is `(address, size)`.
    pub reservations: Vec<(u64, u64)>,
}

impl DeviceTree {
    /// Creates an empty tree with a version tag.
    pub fn new() -> DeviceTree {
        DeviceTree {
            has_version_tag: true,
            ..DeviceTree::default()
        }
    }

    /// Finds a node by absolute path (string or [`NodePath`]).
    pub fn find(&self, path: &str) -> Option<&Node> {
        self.find_path(&NodePath::parse(path))
    }

    /// Finds a node by parsed path.
    pub fn find_path(&self, path: &NodePath) -> Option<&Node> {
        let mut cur = &self.root;
        for seg in path.segments() {
            cur = cur.child(seg)?;
        }
        Some(cur)
    }

    /// Mutable path lookup.
    pub fn find_mut(&mut self, path: &str) -> Option<&mut Node> {
        self.find_path_mut(&NodePath::parse(path))
    }

    /// Mutable parsed-path lookup.
    pub fn find_path_mut(&mut self, path: &NodePath) -> Option<&mut Node> {
        let mut cur = &mut self.root;
        for seg in path.segments() {
            cur = cur.child_mut(seg)?;
        }
        Some(cur)
    }

    /// Gets or creates the node at `path`, creating intermediate nodes.
    pub fn ensure(&mut self, path: &str) -> &mut Node {
        let path = NodePath::parse(path);
        let mut cur = &mut self.root;
        for seg in path.segments() {
            cur = cur.ensure_child(seg);
        }
        cur
    }

    /// Removes the node at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`DtsError::NoSuchNode`] if the path (or its parent) does
    /// not resolve, and a [`DtsError::BadValue`] when asked to remove the
    /// root.
    pub fn remove(&mut self, path: &str) -> Result<Node, DtsError> {
        let parsed = NodePath::parse(path);
        let Some(leaf) = parsed.leaf().map(str::to_string) else {
            return Err(DtsError::BadValue {
                path: "/".into(),
                message: "cannot remove the root node".into(),
            });
        };
        // A path with a leaf always has a parent, but spell the
        // fallback out rather than panic on a future invariant slip.
        let Some(parent) = parsed.parent() else {
            return Err(DtsError::NoSuchNode {
                path: path.to_string(),
            });
        };
        let parent_node = self
            .find_path_mut(&parent)
            .ok_or_else(|| DtsError::NoSuchNode {
                path: parent.to_string(),
            })?;
        // Resolve base-name queries to the exact child name first.
        let exact = parent_node
            .child(&leaf)
            .map(|c| c.name.clone())
            .ok_or_else(|| DtsError::NoSuchNode {
                path: path.to_string(),
            })?;
        parent_node
            .remove_child(&exact)
            .ok_or_else(|| DtsError::NoSuchNode {
                path: path.to_string(),
            })
    }

    /// Resolves a `&label` to the path of the labelled node.
    pub fn resolve_label(&self, label: &str) -> Option<NodePath> {
        self.root
            .walk()
            .into_iter()
            .find(|(_, n)| n.labels.iter().any(|l| l == label))
            .map(|(p, _)| p)
    }

    /// All nodes with their paths, depth first.
    pub fn nodes(&self) -> Vec<(NodePath, &Node)> {
        self.root.walk()
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Resolves an alias from the `/aliases` node (DeviceTree spec
    /// §3.3): the property value is an absolute node path. Returns the
    /// aliased node, or `None` when the alias or its target is absent.
    ///
    /// ```
    /// let t = llhsc_dts::parse(r#"/ {
    ///     aliases { serial0 = "/uart@20000000"; };
    ///     uart@20000000 { };
    /// };"#).unwrap();
    /// assert_eq!(t.resolve_alias("serial0").unwrap().name, "uart@20000000");
    /// ```
    pub fn resolve_alias(&self, alias: &str) -> Option<&Node> {
        let aliases = self.find("/aliases")?;
        let path = aliases.prop_str(alias)?;
        self.find(path)
    }

    /// Assigns phandles to every labelled node and returns the mapping
    /// label → phandle value (used by the FDT encoder to resolve
    /// references).
    pub fn phandle_map(&self) -> BTreeMap<String, u32> {
        let mut map = BTreeMap::new();
        let mut next = 1u32;
        for (_, n) in self.root.walk() {
            for l in &n.labels {
                map.entry(l.clone()).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                });
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceTree {
        let mut t = DeviceTree::new();
        {
            let mem = t.ensure("/memory@40000000");
            mem.set_prop(Property::string("device_type", "memory"));
            mem.set_prop(Property::cells("reg", [0, 0x4000_0000, 0, 0x2000_0000]));
        }
        {
            let cpu0 = t.ensure("/cpus/cpu@0");
            cpu0.set_prop(Property::string("compatible", "arm,cortex-a53"));
            cpu0.set_prop(Property::cells("reg", [0]));
        }
        t.ensure("/cpus/cpu@1");
        t
    }

    #[test]
    fn path_parse_display() {
        let p = NodePath::parse("/cpus/cpu@0");
        assert_eq!(p.segments(), ["cpus", "cpu@0"]);
        assert_eq!(p.to_string(), "/cpus/cpu@0");
        assert_eq!(NodePath::root().to_string(), "/");
        assert_eq!(p.parent().unwrap().to_string(), "/cpus");
        assert_eq!(p.leaf(), Some("cpu@0"));
        assert!(NodePath::root().is_root());
    }

    #[test]
    fn find_and_ensure() {
        let t = sample();
        assert!(t.find("/memory@40000000").is_some());
        assert!(t.find("/cpus/cpu@0").is_some());
        assert!(t.find("/nope").is_none());
        assert_eq!(t.size(), 5); // root, memory, cpus, cpu@0, cpu@1
    }

    #[test]
    fn base_name_lookup_when_unique() {
        let t = sample();
        // "memory" has a unique match even without the unit address.
        assert!(t.find("/memory").is_some());
        // "cpu" is ambiguous under /cpus.
        assert!(t.find("/cpus/cpu").is_none());
    }

    #[test]
    fn unit_address_split() {
        let n = Node::new("memory@40000000");
        assert_eq!(n.base_name(), "memory");
        assert_eq!(n.unit_address(), Some("40000000"));
        let n = Node::new("cpus");
        assert_eq!(n.unit_address(), None);
    }

    #[test]
    fn prop_accessors() {
        let t = sample();
        let mem = t.find("/memory@40000000").unwrap();
        assert_eq!(mem.prop_str("device_type"), Some("memory"));
        assert_eq!(
            mem.prop("reg").unwrap().flat_cells().unwrap(),
            vec![0, 0x4000_0000, 0, 0x2000_0000]
        );
        let cpu = t.find("/cpus/cpu@0").unwrap();
        assert_eq!(cpu.prop_u32("reg"), Some(0));
    }

    #[test]
    fn set_prop_replaces() {
        let mut n = Node::new("x");
        n.set_prop(Property::cells("reg", [1]));
        n.set_prop(Property::cells("reg", [2]));
        assert_eq!(n.properties.len(), 1);
        assert_eq!(n.prop_u32("reg"), Some(2));
    }

    #[test]
    fn remove_prop_and_child() {
        let mut t = sample();
        let mem = t.find_mut("/memory@40000000").unwrap();
        assert!(mem.remove_prop("device_type").is_some());
        assert!(mem.remove_prop("device_type").is_none());
        assert!(t.remove("/cpus/cpu@1").is_ok());
        assert!(t.find("/cpus/cpu@1").is_none());
        assert!(matches!(
            t.remove("/cpus/cpu@1"),
            Err(DtsError::NoSuchNode { .. })
        ));
    }

    #[test]
    fn remove_root_rejected() {
        let mut t = sample();
        assert!(matches!(t.remove("/"), Err(DtsError::BadValue { .. })));
    }

    #[test]
    fn merge_semantics() {
        let mut a = Node::new("uart@20000000");
        a.set_prop(Property::cells("reg", [0x2000_0000, 0x1000]));
        a.ensure_child("sub");
        let mut b = Node::new("uart@20000000");
        b.set_prop(Property::cells("reg", [0x3000_0000, 0x1000]));
        b.set_prop(Property::string("status", "okay"));
        b.labels.push("uart1".into());
        let mut bsub = Node::new("sub");
        bsub.set_prop(Property::flag("present"));
        b.children.push(bsub);
        a.merge(b);
        assert_eq!(
            a.prop("reg").unwrap().flat_cells().unwrap(),
            vec![0x3000_0000, 0x1000]
        );
        assert_eq!(a.prop_str("status"), Some("okay"));
        assert_eq!(a.labels, vec!["uart1".to_string()]);
        assert_eq!(a.children.len(), 1);
        assert!(a.children[0].prop("present").is_some());
    }

    #[test]
    fn walk_paths() {
        let t = sample();
        let paths: Vec<String> = t.nodes().iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(
            paths,
            vec![
                "/",
                "/memory@40000000",
                "/cpus",
                "/cpus/cpu@0",
                "/cpus/cpu@1"
            ]
        );
    }

    #[test]
    fn labels_resolve() {
        let mut t = sample();
        t.find_mut("/cpus/cpu@0")
            .unwrap()
            .labels
            .push("boot_cpu".into());
        assert_eq!(
            t.resolve_label("boot_cpu").unwrap().to_string(),
            "/cpus/cpu@0"
        );
        assert!(t.resolve_label("nope").is_none());
        let ph = t.phandle_map();
        assert_eq!(ph.get("boot_cpu"), Some(&1));
    }

    #[test]
    fn alias_resolution() {
        let mut t = DeviceTree::new();
        t.ensure("/uart@20000000");
        let aliases = t.ensure("/aliases");
        aliases.set_prop(Property::string("serial0", "/uart@20000000"));
        aliases.set_prop(Property::string("ghost", "/nope"));
        assert_eq!(t.resolve_alias("serial0").unwrap().name, "uart@20000000");
        assert!(t.resolve_alias("ghost").is_none());
        assert!(t.resolve_alias("unknown").is_none());
    }

    #[test]
    fn property_to_bytes() {
        let p = Property::cells("reg", [0x12345678, 0x1000]);
        assert_eq!(
            p.to_bytes(),
            vec![0x12, 0x34, 0x56, 0x78, 0x00, 0x00, 0x10, 0x00]
        );
        let p = Property::string("device_type", "memory");
        assert_eq!(p.to_bytes(), b"memory\0".to_vec());
        let p = Property::flag("ranges");
        assert!(p.to_bytes().is_empty());
    }

    #[test]
    fn display_values() {
        let v = PropValue::Cells(vec![Cell::U32(0x10), Cell::Ref("clk".into())]);
        assert_eq!(v.to_string(), "<0x10 &clk>");
        let v = PropValue::Bytes(vec![0xde, 0xad]);
        assert_eq!(v.to_string(), "[de ad]");
        let v = PropValue::Str("ok".into());
        assert_eq!(v.to_string(), "\"ok\"");
    }
}

//! Pretty-printer producing round-trippable DTS source.

use std::fmt::Write as _;

use crate::tree::{DeviceTree, Node, PropValue};

/// Renders a tree as DTS source text.
///
/// The output parses back ([`parse`](crate::parse)) to an equal tree,
/// which the property tests in this crate verify.
///
/// ```
/// let mut tree = llhsc_dts::DeviceTree::new();
/// tree.ensure("/chosen");
/// let text = llhsc_dts::print(&tree);
/// assert!(text.contains("chosen {"));
/// ```
pub fn print(tree: &DeviceTree) -> String {
    let mut out = String::new();
    if tree.has_version_tag {
        out.push_str("/dts-v1/;\n\n");
    }
    for &(addr, size) in &tree.reservations {
        let _ = writeln!(out, "/memreserve/ {addr:#x} {size:#x};");
    }
    out.push_str("/ {\n");
    print_body(&tree.root, 1, &mut out);
    out.push_str("};\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_body(node: &Node, depth: usize, out: &mut String) {
    for p in &node.properties {
        indent(out, depth);
        out.push_str(&p.name);
        if !p.values.is_empty() {
            out.push_str(" = ");
            for (i, v) in p.values.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_value(v, out);
            }
        }
        out.push_str(";\n");
    }
    for c in &node.children {
        out.push('\n');
        indent(out, depth);
        for l in &c.labels {
            let _ = write!(out, "{l}: ");
        }
        let _ = writeln!(out, "{} {{", c.name);
        print_body(c, depth + 1, out);
        indent(out, depth);
        out.push_str("};\n");
    }
}

fn print_value(v: &PropValue, out: &mut String) {
    match v {
        PropValue::Cells(cells) => {
            out.push('<');
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{c}");
            }
            out.push('>');
        }
        PropValue::Str(s) => {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    '\0' => out.push_str("\\0"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        PropValue::Bytes(bs) => {
            out.push('[');
            for (i, b) in bs.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{b:02x}");
            }
            out.push(']');
        }
        PropValue::Ref(l) => {
            let _ = write!(out, "&{l}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::tree::{Cell, Property};

    #[test]
    fn print_empty() {
        let t = DeviceTree::new();
        assert_eq!(print(&t), "/dts-v1/;\n\n/ {\n};\n");
    }

    #[test]
    fn print_parse_roundtrip_basic() {
        let mut t = DeviceTree::new();
        {
            let mem = t.ensure("/memory@40000000");
            mem.set_prop(Property::string("device_type", "memory"));
            mem.set_prop(Property::cells("reg", [0, 0x4000_0000, 0, 0x2000_0000]));
        }
        {
            let cpu = t.ensure("/cpus/cpu@0");
            cpu.labels.push("boot_cpu".into());
            cpu.set_prop(Property::flag("enable"));
        }
        let text = print(&t);
        let back = parse(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn print_escapes_strings() {
        let mut t = DeviceTree::new();
        t.root.set_prop(Property::string("weird", "a\"b\\c\nd"));
        let text = print(&t);
        let back = parse(&text).unwrap();
        assert_eq!(back.root.prop_str("weird"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn print_refs_and_bytes() {
        let mut t = DeviceTree::new();
        t.ensure("/intc").labels.push("intc".into());
        let u = t.ensure("/uart@0");
        u.set_prop(Property {
            name: "interrupt-parent".into(),
            values: vec![PropValue::Cells(vec![Cell::Ref("intc".into())])],
        });
        u.set_prop(Property {
            name: "mac".into(),
            values: vec![PropValue::Bytes(vec![0xde, 0xad])],
        });
        let text = print(&t);
        assert!(text.contains("<&intc>"));
        assert!(text.contains("[de ad]"));
        let back = parse(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn print_memreserve() {
        let mut t = DeviceTree::new();
        t.reservations.push((0x1000, 0x2000));
        let text = print(&t);
        assert!(text.contains("/memreserve/ 0x1000 0x2000;"));
    }
}

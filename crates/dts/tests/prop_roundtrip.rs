//! Property tests: printer/parser and FDT codec round-trips over
//! randomly generated trees.

use llhsc_dts::{fdt, parse, print, Cell, DeviceTree, Node, PropValue, Property};
use proptest::prelude::*;

/// Names safe for nodes/properties in generated trees.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}".prop_map(|s| s)
}

fn arb_unit() -> impl Strategy<Value = Option<u32>> {
    prop::option::of(0u32..=0xffff_ffff)
}

fn arb_prop() -> impl Strategy<Value = Property> {
    let value = prop_oneof![
        prop::collection::vec(any::<u32>(), 0..5)
            .prop_map(|cs| PropValue::Cells(cs.into_iter().map(Cell::U32).collect())),
        "[ -~&&[^\"\\\\]]{0,12}".prop_map(PropValue::Str),
        prop::collection::vec(any::<u8>(), 1..6).prop_map(PropValue::Bytes),
    ];
    (arb_name(), prop::collection::vec(value, 0..3))
        .prop_map(|(name, values)| Property { name, values })
}

fn arb_node(depth: u32) -> BoxedStrategy<Node> {
    let leaf = (
        arb_name(),
        arb_unit(),
        prop::collection::vec(arb_prop(), 0..4),
    )
        .prop_map(|(name, unit, props)| {
            let full = match unit {
                Some(u) => format!("{name}@{u:x}"),
                None => name,
            };
            let mut n = Node::new(&full);
            for p in props {
                n.set_prop(p);
            }
            n
        });
    if depth == 0 {
        leaf.boxed()
    } else {
        (leaf, prop::collection::vec(arb_node(depth - 1), 0..3))
            .prop_map(|(mut n, children)| {
                for c in children {
                    // Avoid duplicate child names (they would merge on parse).
                    if n.child(&c.name).is_none() {
                        n.children.push(c);
                    }
                }
                n
            })
            .boxed()
    }
}

fn arb_tree() -> impl Strategy<Value = DeviceTree> {
    prop::collection::vec(arb_node(2), 0..4).prop_map(|tops| {
        let mut t = DeviceTree::new();
        for n in tops {
            if t.root.child(&n.name).is_none() {
                t.root.children.push(n);
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse is the identity on trees.
    #[test]
    fn print_parse_roundtrip(tree in arb_tree()) {
        let text = print(&tree);
        let back = parse(&text).unwrap();
        prop_assert_eq!(tree, back);
    }

    /// encode → decode → encode is byte-stable.
    #[test]
    fn fdt_roundtrip_stable(tree in arb_tree()) {
        let b1 = fdt::encode(&tree);
        let t2 = fdt::decode(&b1).unwrap();
        let b2 = fdt::encode(&t2);
        prop_assert_eq!(b1, b2);
    }

    /// Decoding preserves the node skeleton (names and counts).
    #[test]
    fn fdt_preserves_structure(tree in arb_tree()) {
        let back = fdt::decode(&fdt::encode(&tree)).unwrap();
        prop_assert_eq!(back.size(), tree.size());
        let orig: Vec<String> = tree.nodes().iter().map(|(p, _)| p.to_string()).collect();
        let dec: Vec<String> = back.nodes().iter().map(|(p, _)| p.to_string()).collect();
        prop_assert_eq!(orig, dec);
    }

    /// Truncating a blob anywhere never panics, only errors.
    #[test]
    fn fdt_truncation_never_panics(tree in arb_tree(), frac in 0.0f64..1.0) {
        let blob = fdt::encode(&tree);
        let cut = ((blob.len() as f64) * frac) as usize;
        let _ = fdt::decode(&blob[..cut.min(blob.len().saturating_sub(1))]);
    }
}

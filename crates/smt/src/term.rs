//! Hash-consed term representation.

use std::collections::HashMap;
use std::fmt;

/// The sort (type) of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Propositional sort.
    Bool,
    /// Fixed-width bit-vector; the payload is the width in bits (1..=128).
    BitVec(u32),
    /// Interned string sort (the paper's encoding of node/property names).
    Str,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::BitVec(w) => write!(f, "(_ BitVec {w})"),
            Sort::Str => write!(f, "String"),
        }
    }
}

/// Handle to a term in a [`Context`](crate::Context)'s term pool.
///
/// Cheap to copy; only meaningful with the context that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Term node. Children are [`TermId`]s into the same pool.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum TermData {
    BoolConst(bool),
    BoolVar(String),
    /// Integer-keyed Boolean variable: `tag` is an interned prefix
    /// string, `index` the key. Avoids the `format!("{tag}_{index}")`
    /// allocation in hot loops that mint families of variables.
    BoolVarIdx {
        tag: u32,
        index: u64,
    },
    Not(TermId),
    And(Vec<TermId>),
    Or(Vec<TermId>),
    Xor(TermId, TermId),
    Implies(TermId, TermId),
    Iff(TermId, TermId),
    Ite(TermId, TermId, TermId),
    /// Equality at any sort (Bool, BitVec, Str).
    Eq(TermId, TermId),

    BvConst {
        width: u32,
        /// Value truncated to `width` bits.
        value: u128,
    },
    BvVar {
        name: String,
        width: u32,
    },
    /// Integer-keyed bit-vector variable (see [`TermData::BoolVarIdx`]).
    BvVarIdx {
        tag: u32,
        index: u64,
        width: u32,
    },
    BvAdd(TermId, TermId),
    BvSub(TermId, TermId),
    BvMul(TermId, TermId),
    BvNeg(TermId),
    BvAnd(TermId, TermId),
    BvOr(TermId, TermId),
    BvXor(TermId, TermId),
    BvNot(TermId),
    /// Logical shift left by a constant amount.
    BvShl(TermId, u32),
    /// Logical shift right by a constant amount.
    BvLshr(TermId, u32),
    /// Logical shift left by a symbolic amount (same width).
    BvShlV(TermId, TermId),
    /// Logical shift right by a symbolic amount (same width).
    BvLshrV(TermId, TermId),
    BvUlt(TermId, TermId),
    BvUle(TermId, TermId),
    BvSlt(TermId, TermId),
    BvSle(TermId, TermId),
    /// Bits `lo..=hi` of the operand (LSB = bit 0).
    Extract {
        hi: u32,
        lo: u32,
        arg: TermId,
    },
    /// `hi ++ lo` — `hi`'s bits become the most significant.
    Concat(TermId, TermId),
    ZeroExt {
        arg: TermId,
        extra: u32,
    },

    /// Interned string constant; payload is the intern id.
    StrConst(u32),
    StrVar(String),
}

/// The hash-consing pool. Identical structure ⇒ identical [`TermId`],
/// which makes equality checks and bit-blast caching O(1).
#[derive(Debug, Default)]
pub(crate) struct TermPool {
    terms: Vec<TermData>,
    sorts: Vec<Sort>,
    dedup: HashMap<TermData, TermId>,
    /// Interned strings, index = intern id.
    strings: Vec<String>,
    string_ids: HashMap<String, u32>,
}

impl TermPool {
    pub(crate) fn new() -> TermPool {
        TermPool::default()
    }

    pub(crate) fn intern_str(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    pub(crate) fn str_for(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    pub(crate) fn num_interned(&self) -> usize {
        self.strings.len()
    }

    pub(crate) fn get(&self, t: TermId) -> &TermData {
        &self.terms[t.index()]
    }

    pub(crate) fn sort(&self, t: TermId) -> Sort {
        self.sorts[t.index()]
    }

    pub(crate) fn len(&self) -> usize {
        self.terms.len()
    }

    pub(crate) fn mk(&mut self, data: TermData, sort: Sort) -> TermId {
        if let Some(&id) = self.dedup.get(&data) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(data.clone());
        self.sorts.push(sort);
        self.dedup.insert(data, id);
        id
    }

    /// Renders a term as an SMT-LIB-flavoured s-expression, used by
    /// diagnostics.
    pub(crate) fn display(&self, t: TermId, out: &mut String) {
        use TermData::*;
        let bin = |pool: &TermPool, out: &mut String, op: &str, a: TermId, b: TermId| {
            out.push('(');
            out.push_str(op);
            out.push(' ');
            pool.display(a, out);
            out.push(' ');
            pool.display(b, out);
            out.push(')');
        };
        match self.get(t).clone() {
            BoolConst(b) => out.push_str(if b { "true" } else { "false" }),
            BoolVar(n) | StrVar(n) => out.push_str(&n),
            BvVar { name, .. } => out.push_str(&name),
            BoolVarIdx { tag, index } | BvVarIdx { tag, index, .. } => {
                out.push_str(self.str_for(tag));
                out.push('_');
                out.push_str(&index.to_string());
            }
            Not(a) => {
                out.push_str("(not ");
                self.display(a, out);
                out.push(')');
            }
            And(xs) | Or(xs) => {
                out.push('(');
                out.push_str(if matches!(self.get(t), And(_)) {
                    "and"
                } else {
                    "or"
                });
                for x in xs {
                    out.push(' ');
                    self.display(x, out);
                }
                out.push(')');
            }
            Xor(a, b) => bin(self, out, "xor", a, b),
            Implies(a, b) => bin(self, out, "=>", a, b),
            Iff(a, b) | Eq(a, b) => bin(self, out, "=", a, b),
            Ite(c, a, b) => {
                out.push_str("(ite ");
                self.display(c, out);
                out.push(' ');
                self.display(a, out);
                out.push(' ');
                self.display(b, out);
                out.push(')');
            }
            BvConst { width, value } => {
                out.push_str(&format!(
                    "#x{value:0>width$x}",
                    width = (width as usize).div_ceil(4)
                ));
            }
            BvAdd(a, b) => bin(self, out, "bvadd", a, b),
            BvSub(a, b) => bin(self, out, "bvsub", a, b),
            BvMul(a, b) => bin(self, out, "bvmul", a, b),
            BvNeg(a) => {
                out.push_str("(bvneg ");
                self.display(a, out);
                out.push(')');
            }
            BvAnd(a, b) => bin(self, out, "bvand", a, b),
            BvOr(a, b) => bin(self, out, "bvor", a, b),
            BvXor(a, b) => bin(self, out, "bvxor", a, b),
            BvNot(a) => {
                out.push_str("(bvnot ");
                self.display(a, out);
                out.push(')');
            }
            BvShl(a, k) => {
                out.push_str(&format!("(bvshl-const {k} "));
                self.display(a, out);
                out.push(')');
            }
            BvLshr(a, k) => {
                out.push_str(&format!("(bvlshr-const {k} "));
                self.display(a, out);
                out.push(')');
            }
            BvShlV(a, b) => bin(self, out, "bvshl", a, b),
            BvLshrV(a, b) => bin(self, out, "bvlshr", a, b),
            BvUlt(a, b) => bin(self, out, "bvult", a, b),
            BvUle(a, b) => bin(self, out, "bvule", a, b),
            BvSlt(a, b) => bin(self, out, "bvslt", a, b),
            BvSle(a, b) => bin(self, out, "bvsle", a, b),
            Extract { hi, lo, arg } => {
                out.push_str(&format!("((_ extract {hi} {lo}) "));
                self.display(arg, out);
                out.push(')');
            }
            Concat(a, b) => bin(self, out, "concat", a, b),
            ZeroExt { arg, extra } => {
                out.push_str(&format!("((_ zero_extend {extra}) "));
                self.display(arg, out);
                out.push(')');
            }
            StrConst(id) => {
                out.push('"');
                out.push_str(self.str_for(id));
                out.push('"');
            }
        }
    }
}

/// Masks `value` to `width` bits.
pub(crate) fn mask(value: u128, width: u32) -> u128 {
    if width >= 128 {
        value
    } else {
        value & ((1u128 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let a = p.mk(TermData::BoolVar("a".into()), Sort::Bool);
        let a2 = p.mk(TermData::BoolVar("a".into()), Sort::Bool);
        let b = p.mk(TermData::BoolVar("b".into()), Sort::Bool);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn interning_is_stable() {
        let mut p = TermPool::new();
        let x = p.intern_str("memory");
        let y = p.intern_str("reg");
        let x2 = p.intern_str("memory");
        assert_eq!(x, x2);
        assert_ne!(x, y);
        assert_eq!(p.str_for(x), "memory");
        assert_eq!(p.num_interned(), 2);
    }

    #[test]
    fn mask_behaviour() {
        assert_eq!(mask(0xff, 4), 0xf);
        assert_eq!(mask(0x100, 8), 0);
        assert_eq!(mask(u128::MAX, 128), u128::MAX);
    }

    #[test]
    fn sort_display() {
        assert_eq!(Sort::Bool.to_string(), "Bool");
        assert_eq!(Sort::BitVec(64).to_string(), "(_ BitVec 64)");
        assert_eq!(Sort::Str.to_string(), "String");
    }
}

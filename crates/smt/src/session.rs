//! Persistent solver sessions: assumption-guarded constraint slices.
//!
//! A [`SolverSession`] keeps one [`Context`] — and with it the bit-blast
//! cache and the CDCL solver's learnt clauses — alive across many
//! logically independent checks. Each group of constraints (one VM's
//! regions, one product's schema obligations, one device tree's
//! disjointness gates) is asserted once as a **slice**: every clause is
//! guarded by a slice-specific activation literal via
//! [`Context::assert_implied`], so the constraints are permanent but
//! only bind in checks that pass the guard as an assumption.
//!
//! Activation replaces `push`; *retraction is simply not passing the
//! guard* — no unit clause ever kills a slice, so a slice can be
//! re-activated arbitrarily often (warm daemon requests, repeated VM
//! checks) and the solver keeps everything it learnt about it. This
//! generalizes the assumption pattern `MultiModel::exact_assumptions`
//! already used for product selection to every checker in the pipeline.
//!
//! Slices are keyed by a caller-chosen 64-bit content key (see
//! [`slice_key`]); re-registering the same key returns the existing
//! guard and skips re-encoding, which the [`SessionStats`] counters
//! make observable.

use std::collections::{HashMap, HashSet};

use llhsc_sat::{Cnf, Lit, ProofStep, SolverConfig};

use crate::context::{CertStats, CheckResult, Context, Model};
use crate::term::TermId;

/// Stable FNV-1a hash of arbitrary bytes, for deriving slice keys from
/// content. Deterministic across runs and platforms.
pub fn slice_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A registered constraint slice: its activation guard plus whether
/// this registration created it (fresh) or found it already encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    guard: TermId,
    fresh: bool,
}

impl Slice {
    /// The activation guard; pass it as an assumption to bind the
    /// slice's constraints in a check.
    pub fn guard(&self) -> TermId {
        self.guard
    }

    /// `true` the first time the key was registered: the caller should
    /// build and [`SolverSession::assert_in`] the slice's constraints.
    /// On reuse the constraints are already in the solver.
    pub fn is_fresh(&self) -> bool {
        self.fresh
    }
}

/// Reuse counters of a [`SolverSession`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Slices registered for the first time (constraints encoded).
    pub slices_created: u64,
    /// Slice registrations that found the key already encoded.
    pub slices_reused: u64,
    /// Guarded/root assertions that reached the solver.
    pub asserts_encoded: u64,
    /// Guarded/root assertions skipped because the identical
    /// (guard, term) pair was already asserted.
    pub asserts_reused: u64,
    /// Checks discharged against the shared context.
    pub checks: u64,
}

impl SessionStats {
    /// Field-wise sum, for aggregating across parallel sessions.
    pub fn merge(&mut self, other: &SessionStats) {
        self.slices_created += other.slices_created;
        self.slices_reused += other.slices_reused;
        self.asserts_encoded += other.asserts_encoded;
        self.asserts_reused += other.asserts_reused;
        self.checks += other.checks;
    }

    /// The work performed since `base` was snapshotted — counters only
    /// grow, so this attributes a shared session's totals to the check
    /// that ran in between.
    pub fn delta_since(&self, base: &SessionStats) -> SessionStats {
        SessionStats {
            slices_created: self.slices_created.saturating_sub(base.slices_created),
            slices_reused: self.slices_reused.saturating_sub(base.slices_reused),
            asserts_encoded: self.asserts_encoded.saturating_sub(base.asserts_encoded),
            asserts_reused: self.asserts_reused.saturating_sub(base.asserts_reused),
            checks: self.checks.saturating_sub(base.checks),
        }
    }
}

/// One persistent solving context shared by many assumption-guarded
/// checks. See the [module docs](self) for the protocol.
#[derive(Debug, Default)]
pub struct SolverSession {
    ctx: Context,
    /// Content key → activation guard of the already-encoded slice.
    slices: HashMap<u64, TermId>,
    /// `(guard, term)` pairs already asserted, for idempotent replays.
    guarded: HashSet<(TermId, TermId)>,
    /// Unconditionally asserted terms, same idea.
    rooted: HashSet<TermId>,
    stats: SessionStats,
}

impl SolverSession {
    /// Creates an empty session around a fresh [`Context`].
    pub fn new() -> SolverSession {
        SolverSession::default()
    }

    /// Creates a session whose context records every problem clause
    /// (see [`Context::with_clause_log`]), enabling
    /// [`SolverSession::export_projected`].
    pub fn with_logged_context() -> SolverSession {
        SolverSession {
            ctx: Context::with_clause_log(),
            ..SolverSession::default()
        }
    }

    /// Creates a *certifying* session (see
    /// [`Context::with_certification`]): every `Unsat` verdict any check
    /// produces carries a DRAT proof that is replayed through the
    /// in-tree checker before the verdict is reported, and the formula +
    /// proof pair can be exported with [`SolverSession::export_proof`].
    pub fn with_certification() -> SolverSession {
        SolverSession {
            ctx: Context::with_certification(),
            ..SolverSession::default()
        }
    }

    /// Creates a session over a solver with the given configuration,
    /// for in-processing/restart ablation runs.
    pub fn with_solver_config(config: SolverConfig) -> SolverSession {
        SolverSession {
            ctx: Context::with_solver_config(config),
            ..SolverSession::default()
        }
    }

    /// Installs an in-solve progress sink on the shared context (see
    /// [`Context::set_progress`]): every check made through this session
    /// heartbeats through it. Observation-only.
    pub fn set_progress(&mut self, sink: std::sync::Arc<dyn llhsc_sat::ProgressSink>) {
        self.ctx.set_progress(sink);
    }

    /// Removes the progress sink, if any.
    pub fn clear_progress(&mut self) {
        self.ctx.clear_progress();
    }

    /// Certification counters of the underlying context (zero unless
    /// the session was created with
    /// [`SolverSession::with_certification`]).
    pub fn cert_stats(&self) -> CertStats {
        self.ctx.cert_stats()
    }

    /// The accumulated formula and DRAT proof (see
    /// [`Context::export_proof`]); `None` for non-certifying sessions.
    pub fn export_proof(&self) -> Option<(Cnf, Vec<ProofStep>)> {
        self.ctx.export_proof()
    }

    /// Exports the session's formula as a standalone CNF restricted to
    /// the given slices: every activation guard in `active` is pinned
    /// true, so the exported formula holds exactly the constraints a
    /// [`SolverSession::check`] with those slices would see. `over`
    /// lists the Boolean terms defining the projection (see
    /// [`Context::export_cnf`]); the returned literals align with it.
    ///
    /// Returns `None` unless the session was created with
    /// [`SolverSession::with_logged_context`].
    pub fn export_projected(
        &mut self,
        active: &[Slice],
        over: &[TermId],
    ) -> Option<(Cnf, Vec<Lit>)> {
        let guards: Vec<TermId> = active.iter().map(|s| s.guard).collect();
        self.ctx.export_cnf(over, &guards)
    }

    /// Imports a propositional CNF — typically a feature-model export
    /// from `llhsc_fm::Analyzer::export_cnf` — as a slice of this
    /// session: every CNF variable `v` becomes the Boolean term
    /// `bool_var_i(tag, v)` and every clause is asserted under the
    /// slice's activation guard, so the formula binds exactly in checks
    /// that activate the slice (the *family* constraint of lifted
    /// checking). Returns the slice plus the term of each `projection`
    /// literal, aligned with the input.
    ///
    /// Keyed like any slice: re-importing the same `key` skips the
    /// clause walk and only rebuilds the (interned, free) projection
    /// terms.
    pub fn import_cnf(
        &mut self,
        tag: &str,
        key: u64,
        cnf: &Cnf,
        projection: &[Lit],
    ) -> (Slice, Vec<TermId>) {
        let slice = self.slice(key);
        if slice.is_fresh() {
            for clause in cnf.clauses() {
                let mut lits = Vec::with_capacity(clause.len());
                for l in clause {
                    let v = self.ctx.bool_var_i(tag, l.var().index() as u64);
                    lits.push(if l.is_positive() { v } else { self.ctx.not(v) });
                }
                let c = self.ctx.or(lits);
                self.assert_in(slice, c);
            }
        }
        let proj = projection
            .iter()
            .map(|l| {
                let v = self.ctx.bool_var_i(tag, l.var().index() as u64);
                if l.is_positive() {
                    v
                } else {
                    self.ctx.not(v)
                }
            })
            .collect();
        (slice, proj)
    }

    /// The underlying context, for term building and model inspection.
    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    /// Mutable access to the underlying context (term builders take
    /// `&mut self`). Callers should not `push`/`pop` or `assert`
    /// directly — that is what sessions replace.
    pub fn ctx_mut(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// Registers (or finds) the slice for a content key. Fresh slices
    /// get a dedicated activation variable; reused keys return the
    /// existing guard without touching the solver.
    pub fn slice(&mut self, key: u64) -> Slice {
        if let Some(&guard) = self.slices.get(&key) {
            self.stats.slices_reused += 1;
            return Slice {
                guard,
                fresh: false,
            };
        }
        let guard = self.ctx.bool_var_i("slice!act", key);
        self.slices.insert(key, guard);
        self.stats.slices_created += 1;
        Slice { guard, fresh: true }
    }

    /// Asserts `t` under a slice's guard (as `guard → t`, permanent).
    /// Idempotent: re-asserting the same pair is a no-op.
    pub fn assert_in(&mut self, slice: Slice, t: TermId) {
        if !self.guarded.insert((slice.guard, t)) {
            self.stats.asserts_reused += 1;
            return;
        }
        self.stats.asserts_encoded += 1;
        self.ctx.assert_implied(slice.guard, t);
    }

    /// Asserts `t` unconditionally (ground level), deduplicated.
    /// For constraints shared by every check in the session.
    pub fn assert_root(&mut self, t: TermId) {
        if !self.rooted.insert(t) {
            self.stats.asserts_reused += 1;
            return;
        }
        self.stats.asserts_encoded += 1;
        self.ctx.assert(t);
    }

    /// Checks satisfiability with the given slices activated, plus any
    /// extra assumption terms. Everything is retracted automatically
    /// afterwards — the session state only grows monotonically.
    pub fn check(&mut self, active: &[Slice], assumptions: &[TermId]) -> CheckResult {
        self.stats.checks += 1;
        let mut lits: Vec<TermId> = Vec::with_capacity(active.len() + assumptions.len());
        lits.extend(active.iter().map(|s| s.guard));
        lits.extend_from_slice(assumptions);
        self.ctx.check_assuming(&lits)
    }

    /// The model of the last `Sat` check, if any.
    pub fn model(&self) -> Option<Model<'_>> {
        self.ctx.model()
    }

    /// After an `Unsat` check, the assumption terms involved in the
    /// conflict (slice guards included).
    pub fn unsat_core(&self) -> &[TermId] {
        self.ctx.unsat_core()
    }

    /// Reuse counters of this session.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_activate_independently() {
        let mut s = SolverSession::new();
        let x = s.ctx_mut().bv_var("x", 8);
        let lo = s.ctx_mut().bv_const(10, 8);
        let hi = s.ctx_mut().bv_const(5, 8);
        let above = s.ctx_mut().bv_ugt(x, lo); // x > 10
        let below = s.ctx_mut().bv_ult(x, hi); // x < 5
        let a = s.slice(1);
        s.assert_in(a, above);
        let b = s.slice(2);
        s.assert_in(b, below);

        // Each slice alone is satisfiable; together they contradict.
        assert_eq!(s.check(&[a], &[]), CheckResult::Sat);
        assert!(s.model().unwrap().eval_bv(x).unwrap() > 10);
        assert_eq!(s.check(&[b], &[]), CheckResult::Sat);
        assert!(s.model().unwrap().eval_bv(x).unwrap() < 5);
        assert_eq!(s.check(&[a, b], &[]), CheckResult::Unsat);
        // Retraction is just not passing the guard: both still usable.
        assert_eq!(s.check(&[a], &[]), CheckResult::Sat);
        assert_eq!(s.check(&[], &[]), CheckResult::Sat);
    }

    #[test]
    fn slice_reuse_is_idempotent_and_counted() {
        let mut s = SolverSession::new();
        let p = s.ctx_mut().bool_var("p");
        let first = s.slice(42);
        assert!(first.is_fresh());
        s.assert_in(first, p);
        let again = s.slice(42);
        assert!(!again.is_fresh());
        assert_eq!(again.guard(), first.guard());
        // Replaying the assertion is a no-op.
        s.assert_in(again, p);
        let st = s.stats();
        assert_eq!(st.slices_created, 1);
        assert_eq!(st.slices_reused, 1);
        assert_eq!(st.asserts_encoded, 1);
        assert_eq!(st.asserts_reused, 1);
        let np = s.ctx_mut().not(p);
        assert_eq!(s.check(&[first], &[np]), CheckResult::Unsat);
        assert_eq!(s.stats().checks, 1);
    }

    #[test]
    fn unsat_core_contains_guilty_guard() {
        let mut s = SolverSession::new();
        let p = s.ctx_mut().bool_var("p");
        let np = s.ctx_mut().not(p);
        let a = s.slice(1);
        s.assert_in(a, p);
        let b = s.slice(2);
        s.assert_in(b, np);
        let c = s.slice(3); // irrelevant slice
        let q = s.ctx_mut().bool_var("q");
        s.assert_in(c, q);
        assert_eq!(s.check(&[a, b, c], &[]), CheckResult::Unsat);
        let core = s.unsat_core();
        assert!(core.contains(&a.guard()));
        assert!(core.contains(&b.guard()));
        assert!(!core.contains(&c.guard()));
    }

    #[test]
    fn certifying_session_proves_every_unsat_check() {
        use llhsc_sat::{check_drat, CheckMode};

        let mut s = SolverSession::with_certification();
        let x = s.ctx_mut().bv_var("x", 8);
        let lo = s.ctx_mut().bv_const(10, 8);
        let hi = s.ctx_mut().bv_const(5, 8);
        let above = s.ctx_mut().bv_ugt(x, lo); // x > 10
        let below = s.ctx_mut().bv_ult(x, hi); // x < 5
        let a = s.slice(1);
        s.assert_in(a, above);
        let b = s.slice(2);
        s.assert_in(b, below);
        assert_eq!(s.check(&[a], &[]), CheckResult::Sat);
        assert_eq!(s.check(&[a, b], &[]), CheckResult::Unsat);
        let cert = s.cert_stats();
        assert_eq!(cert.proofs, 1);
        assert!(cert.checked > 0);
        let (cnf, proof) = s.export_proof().expect("certifying session exports");
        assert!(check_drat(&cnf, &proof, CheckMode::Last).is_ok());
    }

    #[test]
    fn import_cnf_binds_only_when_slice_is_active() {
        use llhsc_sat::Var;

        // (a ∨ b) ∧ (¬a ∨ b): any model has b = true.
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);

        let mut s = SolverSession::new();
        let (slice, proj) = s.import_cnf("fm", 7, &cnf, &[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(proj.len(), 2);
        let nb = s.ctx_mut().not(proj[1]);
        // Inactive slice: ¬b alone is satisfiable.
        assert_eq!(s.check(&[], &[nb]), CheckResult::Sat);
        // Active slice forces b.
        assert_eq!(s.check(&[slice], &[nb]), CheckResult::Unsat);
        assert_eq!(s.check(&[slice], &[]), CheckResult::Sat);
        let m_b = s.model().unwrap().eval_bool(proj[1]);
        assert_eq!(m_b, Some(true));

        // Re-import with the same key: no new clause work, projection
        // terms identical (negative literals map to negated terms).
        let before = s.stats();
        let (again, proj2) = s.import_cnf("fm", 7, &cnf, &[Lit::neg(a)]);
        assert!(!again.is_fresh());
        assert_eq!(s.stats().asserts_encoded, before.asserts_encoded);
        let pa = s
            .ctx_mut()
            .bool_var_i("fm", Var::from_index(0).index() as u64);
        let npa = s.ctx_mut().not(pa);
        assert_eq!(proj2[0], npa);
    }

    #[test]
    fn root_asserts_bind_every_check() {
        let mut s = SolverSession::new();
        let p = s.ctx_mut().bool_var("p");
        s.assert_root(p);
        s.assert_root(p);
        assert_eq!(s.stats().asserts_encoded, 1);
        let np = s.ctx_mut().not(p);
        let a = s.slice(9);
        s.assert_in(a, np);
        assert_eq!(s.check(&[], &[]), CheckResult::Sat);
        assert_eq!(s.check(&[a], &[]), CheckResult::Unsat);
    }

    #[test]
    fn session_matches_fresh_context_verdicts() {
        // The same queries against a shared session and against fresh
        // contexts agree; the session encodes strictly less.
        let queries: &[(u128, u128, bool)] =
            &[(3, 7, true), (9, 7, false), (0, 1, true), (7, 7, false)];
        let mut s = SolverSession::new();
        for &(v, limit, sat) in queries {
            let x = s.ctx_mut().bv_var("x", 16);
            let l = s.ctx_mut().bv_const(limit, 16);
            let bound = s.ctx_mut().bv_ult(x, l);
            s.assert_root(bound);
            let cv = s.ctx_mut().bv_const(v, 16);
            let eq = s.ctx_mut().eq(x, cv);
            let got = s.check(&[], &[eq]) == CheckResult::Sat;
            assert_eq!(got, sat, "session verdict for x={v} < {limit}");

            let mut fresh = Context::new();
            let fx = fresh.bv_var("x", 16);
            let fl = fresh.bv_const(limit, 16);
            let fb = fresh.bv_ult(fx, fl);
            fresh.assert(fb);
            let fv = fresh.bv_const(v, 16);
            let feq = fresh.eq(fx, fv);
            let fgot = fresh.check_assuming(&[feq]) == CheckResult::Sat;
            assert_eq!(got, fgot);
        }
        // The bound only re-encodes when the limit changes: 2 distinct
        // bound terms (`x < 7`, `x < 1`) across 4 queries.
        assert_eq!(s.stats().asserts_encoded, 2);
        assert_eq!(s.stats().asserts_reused, 2);
    }

    #[test]
    fn export_projected_respects_active_slices() {
        use llhsc_sat::ModelIter;

        let mut s = SolverSession::with_logged_context();
        let p = s.ctx_mut().bool_var("p");
        let q = s.ctx_mut().bool_var("q");
        let pq = s.ctx_mut().or([p, q]);
        let np = s.ctx_mut().not(p);
        let a = s.slice(1);
        s.assert_in(a, pq); // p ∨ q
        let b = s.slice(2);
        s.assert_in(b, np); // ¬p

        // With only slice a active: 3 models of (p, q).
        let (cnf, proj) = s.export_projected(&[a], &[p, q]).expect("logged session");
        let vars: Vec<_> = proj.iter().map(|l| l.var()).collect();
        let mut solver = cnf.to_solver();
        let bc = ModelIter::projected(&mut solver, vars).count_up_to(8);
        assert_eq!(bc.models, 3);
        assert!(bc.is_exact());

        // Both slices: ¬p forces p false, leaving q true — 1 model.
        let (cnf, proj) = s
            .export_projected(&[a, b], &[p, q])
            .expect("logged session");
        let vars: Vec<_> = proj.iter().map(|l| l.var()).collect();
        let mut solver = cnf.to_solver();
        let bc = ModelIter::projected(&mut solver, vars).count_up_to(8);
        assert_eq!(bc.models, 1);

        // The session itself is untouched by the exports.
        assert_eq!(s.check(&[a], &[]), CheckResult::Sat);
    }

    #[test]
    fn export_requires_a_logged_context() {
        let mut s = SolverSession::new();
        let p = s.ctx_mut().bool_var("p");
        assert!(s.export_projected(&[], &[p]).is_none());
    }

    #[test]
    fn slice_key_is_stable() {
        assert_eq!(slice_key(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(slice_key(b"llhsc"), slice_key(b"llhsc"));
        assert_ne!(slice_key(b"vm0"), slice_key(b"vm1"));
    }
}

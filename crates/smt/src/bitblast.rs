//! Bit-blasting: lowering terms to CNF over solver literals.
//!
//! Boolean structure goes through the Tseitin transform (every connective
//! gets a definitional literal); bit-vector operations are expanded into
//! gate networks (ripple-carry adders, shift-add multipliers, borrow-chain
//! comparators). Encodings are cached per term, so shared subterms are
//! blasted once — this is what makes the incremental [`Context`]
//! (re)checks cheap, mirroring the paper's use of one growing Z3 instance.
//!
//! [`Context`]: crate::Context

use std::collections::HashMap;

use llhsc_sat::{Lit, Solver};

use crate::term::{mask, Sort, TermData, TermId, TermPool};

/// The per-term encoding: a single literal for Bool terms, a handle to
/// an interned LSB-first literal vector for BitVec (and interned Str)
/// terms. `Copy`, so cache hits in [`Blaster::encode`] return without
/// cloning a `Vec<Lit>` — the old cache-hit path allocated on every
/// lookup of an already-blasted term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Encoding {
    Bool(Lit),
    Bits(BitsId),
}

/// Handle to an interned literal vector in the blaster's flat bit
/// store: a `(offset, len)` slice, resolved by [`Blaster::bits_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BitsId {
    off: u32,
    len: u32,
}

/// Width (in bits) used to encode interned strings as bit-vectors.
/// 32 bits comfortably exceeds any realistic number of distinct node or
/// property names in a DeviceTree.
pub(crate) const STR_WIDTH: u32 = 32;

#[derive(Debug)]
pub(crate) struct Blaster {
    cache: HashMap<TermId, Encoding>,
    /// Flat store of every interned bit-vector encoding, back to back;
    /// a [`BitsId`] is an `(offset, len)` slice into it.
    bit_store: Vec<Lit>,
    /// Literal that is constant-true in the solver.
    true_lit: Option<Lit>,
    /// Cache hits in [`Blaster::encode`] — terms returned without any
    /// fresh gates or clauses.
    hits: u64,
    /// Cache misses — terms lowered to fresh gate networks.
    misses: u64,
}

impl Blaster {
    pub(crate) fn new() -> Blaster {
        Blaster {
            cache: HashMap::new(),
            bit_store: Vec::new(),
            true_lit: None,
            hits: 0,
            misses: 0,
        }
    }

    pub(crate) fn cached(&self, t: TermId) -> Option<Encoding> {
        self.cache.get(&t).copied()
    }

    /// Resolves an interned bit-vector handle to its literals.
    pub(crate) fn bits_of(&self, id: BitsId) -> &[Lit] {
        &self.bit_store[id.off as usize..(id.off + id.len) as usize]
    }

    fn intern_bits(&mut self, lits: &[Lit]) -> BitsId {
        let off = self.bit_store.len() as u32;
        self.bit_store.extend_from_slice(lits);
        BitsId {
            off,
            len: lits.len() as u32,
        }
    }

    /// `(cache hits, cache misses)` of [`Blaster::encode`] over the
    /// blaster's lifetime. The hit count measures how much encoding
    /// work term sharing (and session reuse) saved.
    pub(crate) fn encode_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn true_lit(&mut self, solver: &mut Solver) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = Lit::pos(solver.new_var());
        solver.add_clause([l]);
        self.true_lit = Some(l);
        l
    }

    fn false_lit(&mut self, solver: &mut Solver) -> Lit {
        !self.true_lit(solver)
    }

    fn const_lit(&mut self, solver: &mut Solver, b: bool) -> Lit {
        if b {
            self.true_lit(solver)
        } else {
            self.false_lit(solver)
        }
    }

    // ----- gates (Tseitin definitions) -----

    fn gate_and(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        let o = Lit::pos(solver.new_var());
        solver.add_clause([!a, !b, o]);
        solver.add_clause([a, !o]);
        solver.add_clause([b, !o]);
        o
    }

    fn gate_or(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        !self.gate_and(solver, !a, !b)
    }

    fn gate_xor(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        let o = Lit::pos(solver.new_var());
        solver.add_clause([!a, !b, !o]);
        solver.add_clause([a, b, !o]);
        solver.add_clause([a, !b, o]);
        solver.add_clause([!a, b, o]);
        o
    }

    /// `o ↔ (a ↔ b)`
    fn gate_iff(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        !self.gate_xor(solver, a, b)
    }

    /// `o ↔ ite(c, t, e)`
    fn gate_mux(&mut self, solver: &mut Solver, c: Lit, t: Lit, e: Lit) -> Lit {
        let o = Lit::pos(solver.new_var());
        solver.add_clause([!c, !t, o]);
        solver.add_clause([!c, t, !o]);
        solver.add_clause([c, !e, o]);
        solver.add_clause([c, e, !o]);
        o
    }

    /// Majority of three (the carry function of a full adder).
    fn gate_maj(&mut self, solver: &mut Solver, a: Lit, b: Lit, c: Lit) -> Lit {
        let o = Lit::pos(solver.new_var());
        solver.add_clause([!a, !b, o]);
        solver.add_clause([!a, !c, o]);
        solver.add_clause([!b, !c, o]);
        solver.add_clause([a, b, !o]);
        solver.add_clause([a, c, !o]);
        solver.add_clause([b, c, !o]);
        o
    }

    fn gate_and_many(&mut self, solver: &mut Solver, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.true_lit(solver),
            [l] => *l,
            _ => {
                let o = Lit::pos(solver.new_var());
                for &l in lits {
                    solver.add_clause([l, !o]);
                }
                let mut clause: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                clause.push(o);
                solver.add_clause(clause);
                o
            }
        }
    }

    fn gate_or_many(&mut self, solver: &mut Solver, lits: &[Lit]) -> Lit {
        let negs: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.gate_and_many(solver, &negs)
    }

    // ----- bit-vector networks -----

    /// Ripple-carry addition (wrapping); returns sum bits.
    fn ripple_add(
        &mut self,
        solver: &mut Solver,
        a: &[Lit],
        b: &[Lit],
        mut carry: Lit,
    ) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.gate_xor(solver, a[i], b[i]);
            let s = self.gate_xor(solver, axb, carry);
            out.push(s);
            if i + 1 < a.len() {
                carry = self.gate_maj(solver, a[i], b[i], carry);
            }
        }
        out
    }

    /// Unsigned `a < b` via an LSB-to-MSB borrow chain.
    fn ult_chain(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut lt = self.false_lit(solver);
        for i in 0..a.len() {
            // lt' = (¬a_i ∧ b_i) ∨ ((a_i ↔ b_i) ∧ lt)
            let strictly = self.gate_and(solver, !a[i], b[i]);
            let eq = self.gate_iff(solver, a[i], b[i]);
            let keep = self.gate_and(solver, eq, lt);
            lt = self.gate_or(solver, strictly, keep);
        }
        lt
    }

    /// Barrel shifter: shifts `a` by the symbolic amount `b` (left when
    /// `left`, logical right otherwise). Amounts ≥ width yield zero.
    fn barrel_shift(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit], left: bool) -> Vec<Lit> {
        let w = a.len();
        let mut cur: Vec<Lit> = a.to_vec();
        let stages = usize::BITS - (w - 1).leading_zeros(); // ceil(log2 w)
        for s in 0..stages {
            let amount = 1usize << s;
            let sel = b[s as usize];
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if left {
                    if i >= amount {
                        Some(cur[i - amount])
                    } else {
                        None
                    }
                } else if i + amount < w {
                    Some(cur[i + amount])
                } else {
                    None
                };
                let shifted = shifted.unwrap_or_else(|| self.false_lit(solver));
                next.push(self.gate_mux(solver, sel, shifted, cur[i]));
            }
            cur = next;
        }
        // If any bit of b beyond the stage range is set, the amount is
        // ≥ 2^stages ≥ w (for power-of-two w; for others also covers the
        // range [2^stages, …)); additionally amounts in
        // [w, 2^stages) must zero the result, handled by comparing b ≥ w.
        let wlim = self.const_bits(solver, w as u128, b.len() as u32);
        let too_big = {
            // b >= w  ==  not (b < w)
            let lt = self.ult_chain(solver, b, &wlim);
            !lt
        };
        cur.into_iter()
            .map(|bit| self.gate_and(solver, bit, !too_big))
            .collect()
    }

    // ----- the main lowering -----

    pub(crate) fn bool_lit(&mut self, pool: &TermPool, solver: &mut Solver, t: TermId) -> Lit {
        match self.encode(pool, solver, t) {
            Encoding::Bool(l) => l,
            Encoding::Bits(_) => panic!("expected Bool term, found bit-vector"),
        }
    }

    fn bits_id(&mut self, pool: &TermPool, solver: &mut Solver, t: TermId) -> BitsId {
        match self.encode(pool, solver, t) {
            Encoding::Bits(b) => b,
            Encoding::Bool(_) => panic!("expected bit-vector term, found Bool"),
        }
    }

    /// Owned copy of a bit-vector operand's literals, for gate
    /// construction in the (once-per-term) uncached path. Cache *hits*
    /// of the parent term never reach this.
    fn bits(&mut self, pool: &TermPool, solver: &mut Solver, t: TermId) -> Vec<Lit> {
        let id = self.bits_id(pool, solver, t);
        self.bits_of(id).to_vec()
    }

    pub(crate) fn encode(&mut self, pool: &TermPool, solver: &mut Solver, t: TermId) -> Encoding {
        if let Some(&e) = self.cache.get(&t) {
            self.hits += 1;
            return e;
        }
        self.misses += 1;
        let enc = self.encode_uncached(pool, solver, t);
        self.cache.insert(t, enc);
        enc
    }

    fn const_bits(&mut self, solver: &mut Solver, value: u128, width: u32) -> Vec<Lit> {
        (0..width)
            .map(|i| {
                let bit = (value >> i) & 1 == 1;
                self.const_lit(solver, bit)
            })
            .collect()
    }

    fn fresh_bits(&mut self, solver: &mut Solver, width: u32) -> Vec<Lit> {
        (0..width).map(|_| Lit::pos(solver.new_var())).collect()
    }

    fn enc_bits(&mut self, v: Vec<Lit>) -> Encoding {
        let id = self.intern_bits(&v);
        Encoding::Bits(id)
    }

    fn encode_uncached(&mut self, pool: &TermPool, solver: &mut Solver, t: TermId) -> Encoding {
        use TermData::*;
        match pool.get(t).clone() {
            BoolConst(b) => Encoding::Bool(self.const_lit(solver, b)),
            BoolVar(_) | BoolVarIdx { .. } => Encoding::Bool(Lit::pos(solver.new_var())),
            Not(a) => {
                let l = self.bool_lit(pool, solver, a);
                Encoding::Bool(!l)
            }
            And(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|&x| self.bool_lit(pool, solver, x)).collect();
                Encoding::Bool(self.gate_and_many(solver, &lits))
            }
            Or(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|&x| self.bool_lit(pool, solver, x)).collect();
                Encoding::Bool(self.gate_or_many(solver, &lits))
            }
            Xor(a, b) => {
                let (la, lb) = (
                    self.bool_lit(pool, solver, a),
                    self.bool_lit(pool, solver, b),
                );
                Encoding::Bool(self.gate_xor(solver, la, lb))
            }
            Implies(a, b) => {
                let (la, lb) = (
                    self.bool_lit(pool, solver, a),
                    self.bool_lit(pool, solver, b),
                );
                Encoding::Bool(self.gate_or(solver, !la, lb))
            }
            Iff(a, b) => {
                let (la, lb) = (
                    self.bool_lit(pool, solver, a),
                    self.bool_lit(pool, solver, b),
                );
                Encoding::Bool(self.gate_iff(solver, la, lb))
            }
            Ite(c, a, b) => {
                let lc = self.bool_lit(pool, solver, c);
                match pool.sort(a) {
                    Sort::Bool => {
                        let (la, lb) = (
                            self.bool_lit(pool, solver, a),
                            self.bool_lit(pool, solver, b),
                        );
                        Encoding::Bool(self.gate_mux(solver, lc, la, lb))
                    }
                    _ => {
                        let ba = self.bits(pool, solver, a);
                        let bb = self.bits(pool, solver, b);
                        let out = ba
                            .iter()
                            .zip(&bb)
                            .map(|(&x, &y)| self.gate_mux(solver, lc, x, y))
                            .collect();
                        self.enc_bits(out)
                    }
                }
            }
            Eq(a, b) => match pool.sort(a) {
                Sort::Bool => {
                    let (la, lb) = (
                        self.bool_lit(pool, solver, a),
                        self.bool_lit(pool, solver, b),
                    );
                    Encoding::Bool(self.gate_iff(solver, la, lb))
                }
                _ => {
                    let ba = self.bits(pool, solver, a);
                    let bb = self.bits(pool, solver, b);
                    let eqs: Vec<Lit> = ba
                        .iter()
                        .zip(&bb)
                        .map(|(&x, &y)| self.gate_iff(solver, x, y))
                        .collect();
                    Encoding::Bool(self.gate_and_many(solver, &eqs))
                }
            },
            BvConst { width, value } => {
                let v = self.const_bits(solver, value, width);
                self.enc_bits(v)
            }
            BvVar { width, .. } | BvVarIdx { width, .. } => {
                let v = self.fresh_bits(solver, width);
                self.enc_bits(v)
            }
            BvAdd(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let zero = self.false_lit(solver);
                let v = self.ripple_add(solver, &ba, &bb, zero);
                self.enc_bits(v)
            }
            BvSub(a, b) => {
                // a - b = a + ¬b + 1
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let nb: Vec<Lit> = bb.iter().map(|&l| !l).collect();
                let one = self.true_lit(solver);
                let v = self.ripple_add(solver, &ba, &nb, one);
                self.enc_bits(v)
            }
            BvNeg(a) => {
                let ba = self.bits(pool, solver, a);
                let na: Vec<Lit> = ba.iter().map(|&l| !l).collect();
                let zeros = self.const_bits(solver, 0, na.len() as u32);
                let one = self.true_lit(solver);
                let v = self.ripple_add(solver, &zeros, &na, one);
                self.enc_bits(v)
            }
            BvMul(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let w = ba.len();
                let mut acc = self.const_bits(solver, 0, w as u32);
                for i in 0..w {
                    // partial = (b_i ? a << i : 0), truncated to w bits
                    let mut partial = Vec::with_capacity(w);
                    for j in 0..w {
                        if j < i {
                            partial.push(self.false_lit(solver));
                        } else {
                            partial.push(self.gate_and(solver, bb[i], ba[j - i]));
                        }
                    }
                    let zero = self.false_lit(solver);
                    acc = self.ripple_add(solver, &acc, &partial, zero);
                }
                self.enc_bits(acc)
            }
            BvAnd(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let out = ba
                    .iter()
                    .zip(&bb)
                    .map(|(&x, &y)| self.gate_and(solver, x, y))
                    .collect();
                self.enc_bits(out)
            }
            BvOr(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let out = ba
                    .iter()
                    .zip(&bb)
                    .map(|(&x, &y)| self.gate_or(solver, x, y))
                    .collect();
                self.enc_bits(out)
            }
            BvXor(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let out = ba
                    .iter()
                    .zip(&bb)
                    .map(|(&x, &y)| self.gate_xor(solver, x, y))
                    .collect();
                self.enc_bits(out)
            }
            BvNot(a) => {
                let ba = self.bits(pool, solver, a);
                let v: Vec<Lit> = ba.iter().map(|&l| !l).collect();
                self.enc_bits(v)
            }
            BvShl(a, k) => {
                let ba = self.bits(pool, solver, a);
                let w = ba.len();
                let k = k as usize;
                let mut out = Vec::with_capacity(w);
                for i in 0..w {
                    if i < k {
                        out.push(self.false_lit(solver));
                    } else {
                        out.push(ba[i - k]);
                    }
                }
                self.enc_bits(out)
            }
            BvLshr(a, k) => {
                let ba = self.bits(pool, solver, a);
                let w = ba.len();
                let k = k as usize;
                let mut out = Vec::with_capacity(w);
                for i in 0..w {
                    if i + k < w {
                        out.push(ba[i + k]);
                    } else {
                        out.push(self.false_lit(solver));
                    }
                }
                self.enc_bits(out)
            }
            BvShlV(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let v = self.barrel_shift(solver, &ba, &bb, true);
                self.enc_bits(v)
            }
            BvLshrV(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let v = self.barrel_shift(solver, &ba, &bb, false);
                self.enc_bits(v)
            }
            BvUlt(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                Encoding::Bool(self.ult_chain(solver, &ba, &bb))
            }
            BvUle(a, b) => {
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let gt = self.ult_chain(solver, &bb, &ba);
                Encoding::Bool(!gt)
            }
            BvSlt(a, b) => {
                // Signed compare = unsigned compare with MSBs flipped.
                let (mut ba, mut bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let last = ba.len() - 1;
                ba[last] = !ba[last];
                bb[last] = !bb[last];
                Encoding::Bool(self.ult_chain(solver, &ba, &bb))
            }
            BvSle(a, b) => {
                let (mut ba, mut bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let last = ba.len() - 1;
                ba[last] = !ba[last];
                bb[last] = !bb[last];
                let gt = self.ult_chain(solver, &bb, &ba);
                Encoding::Bool(!gt)
            }
            Extract { hi, lo, arg } => {
                // A sub-range of an interned vector is itself contiguous
                // in the bit store: no fresh interning needed.
                let b = self.bits_id(pool, solver, arg);
                Encoding::Bits(BitsId {
                    off: b.off + lo,
                    len: hi - lo + 1,
                })
            }
            Concat(a, b) => {
                // a is the high part.
                let (ba, bb) = (self.bits(pool, solver, a), self.bits(pool, solver, b));
                let mut out = bb;
                out.extend(ba);
                self.enc_bits(out)
            }
            ZeroExt { arg, extra } => {
                let mut ba = self.bits(pool, solver, arg);
                for _ in 0..extra {
                    ba.push(self.false_lit(solver));
                }
                self.enc_bits(ba)
            }
            StrConst(id) => {
                let v = self.const_bits(solver, id as u128, STR_WIDTH);
                self.enc_bits(v)
            }
            StrVar(_) => {
                let v = self.fresh_bits(solver, STR_WIDTH);
                self.enc_bits(v)
            }
        }
    }
}

/// Evaluates a term to a concrete value given a total SAT model, using
/// the blaster's cached encodings. Returns `None` for terms that were
/// never encoded (they did not take part in the last check).
pub(crate) fn eval_in_model(blaster: &Blaster, model: &[bool], t: TermId) -> Option<EvalValue> {
    let lit_val = |l: Lit| -> Option<bool> {
        let v = model.get(l.var().index())?;
        Some(if l.is_positive() { *v } else { !*v })
    };
    match blaster.cached(t)? {
        Encoding::Bool(l) => Some(EvalValue::Bool(lit_val(l)?)),
        Encoding::Bits(id) => {
            let bits = blaster.bits_of(id);
            let mut v: u128 = 0;
            for (i, &b) in bits.iter().enumerate() {
                if lit_val(b)? {
                    v |= 1u128 << i;
                }
            }
            Some(EvalValue::Bits(mask(v, bits.len() as u32)))
        }
    }
}

/// Concrete value of an encoded term under a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EvalValue {
    Bool(bool),
    Bits(u128),
}

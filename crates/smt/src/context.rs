//! The incremental solving context.

use std::cell::Cell;
use std::collections::HashMap;

use llhsc_obs::{SpanId, TraceCtx};
use llhsc_sat::{
    check_drat, CheckMode, Cnf, DratOutcome, Lit, ProgressSink, ProofStep, SolveResult, Solver,
    SolverConfig, SolverStats,
};

use crate::bitblast::{eval_in_model, Blaster, EvalValue, STR_WIDTH};
use crate::term::{mask, Sort, TermData, TermId, TermPool};

/// Outcome of a [`Context::check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// The asserted constraints are satisfiable;
    /// [`Context::model`] yields a witness.
    Sat,
    /// The asserted constraints (plus assumptions, if any) are
    /// unsatisfiable; [`Context::unsat_core`] names the guilty
    /// assumptions.
    Unsat,
}

/// Certification counters of a proof-recording context
/// ([`Context::with_certification`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertStats {
    /// Unsat verdicts certified — each one replayed through the in-tree
    /// DRAT checker before being reported.
    pub proofs: u64,
    /// DRAT steps currently recorded (the proof log is cumulative across
    /// solves, so this is a snapshot, not a sum of deltas).
    pub steps: u64,
    /// Lemmas RUP-verified across all certifications.
    pub checked: u64,
}

impl CertStats {
    /// Accumulates counters from another context's certification work.
    pub fn merge(&mut self, other: &CertStats) {
        self.proofs += other.proofs;
        self.steps += other.steps;
        self.checked += other.checked;
    }
}

/// A snapshot of a context's cost counters: how many terms were built
/// and how much work the underlying SAT solver performed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ContextStats {
    /// Distinct terms created (hash-consed).
    pub terms: usize,
    /// Counters of the underlying SAT solver.
    pub solver: SolverStats,
}

/// An incremental SMT context: build terms, assert them, check, inspect
/// models — mirroring how the paper drives Z3 ("constraints can be added
/// incrementally to the same solver instance", §VI).
///
/// Scopes created by [`Context::push`] are discharged by
/// [`Context::pop`]; assertions made inside a scope are retracted with
/// it. Internally this uses activation literals, so the underlying SAT
/// solver keeps its learnt clauses across scopes.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Context {
    pool: TermPool,
    solver: Solver,
    blaster: Blaster,
    /// Activation literal per open scope.
    scopes: Vec<Lit>,
    /// Terms asserted per scope depth (index 0 = ground level), kept for
    /// diagnostics.
    asserted: Vec<Vec<TermId>>,
    /// Model snapshot from the last Sat check.
    last_model: Option<Vec<bool>>,
    /// Maps assumption literals of the last `check_assuming` back to terms.
    assumption_lits: HashMap<Lit, TermId>,
    /// Core of the last Unsat `check_assuming`.
    last_core: Vec<TermId>,
    /// When set, every `check_assuming` records a "solve" span carrying
    /// the per-call solver-counter delta.
    trace: Option<TraceCtx>,
    /// Counter snapshot taken when the trace was attached and refreshed
    /// after every traced solve (and whenever trailing work is flushed
    /// by [`Context::solver_stats`]): the next span's delta baseline.
    /// A `Cell` so the flush can run from `&self` accessors.
    trace_base: Cell<SolverStats>,
    /// The most recent traced solve span. Solver work that happens
    /// after it (e.g. the unit clause a [`Context::pop`] adds to retract
    /// a scope) is folded into this span's counters when the stats are
    /// next read, keeping span sums equal to the totals.
    last_solve: Cell<Option<SpanId>>,
    /// When true, every `Unsat` answer is replayed through the in-tree
    /// DRAT checker before being reported.
    certify: bool,
    /// Counters of the certification work done so far.
    cert: CertStats,
}

impl Default for Context {
    fn default() -> Context {
        Context::new()
    }
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Context {
        Context::with_solver_config(SolverConfig::default())
    }

    /// Creates an empty context over a solver with the given
    /// configuration — the ablation entry point for the benchmark
    /// harness (in-processing flags, restart policy, …).
    pub fn with_solver_config(config: SolverConfig) -> Context {
        Context {
            pool: TermPool::new(),
            solver: Solver::with_config(config),
            blaster: Blaster::new(),
            scopes: Vec::new(),
            asserted: vec![Vec::new()],
            last_model: None,
            assumption_lits: HashMap::new(),
            last_core: Vec::new(),
            trace: None,
            trace_base: Cell::new(SolverStats::default()),
            last_solve: Cell::new(None),
            certify: false,
            cert: CertStats::default(),
        }
    }

    /// Creates a context whose solver records every problem clause, so
    /// the accumulated bit-blasted formula can later be exported with
    /// [`Context::export_cnf`]. Costs one extra copy of each clause;
    /// use [`Context::new`] when export is not needed.
    pub fn with_clause_log() -> Context {
        let mut ctx = Context::new();
        ctx.solver.enable_clause_log();
        ctx
    }

    /// Creates a *certifying* context: the solver records the
    /// bit-blasted formula and a DRAT proof of every deduction, and each
    /// `Unsat` answer is replayed through the in-tree backward checker
    /// ([`llhsc_sat::check_drat`]) before being reported. An answer
    /// whose proof does not verify panics — an UNSAT verdict is exactly
    /// the one a user cannot cross-examine, so a broken proof must never
    /// be reported as a clean refutation. Costs one copy of each clause
    /// plus the proof log and a checker replay per refutation; use
    /// [`Context::new`] when certification is not requested.
    pub fn with_certification() -> Context {
        let mut ctx = Context::new();
        ctx.solver.enable_clause_log();
        ctx.solver.enable_proof();
        ctx.certify = true;
        ctx
    }

    /// Exports the bit-blasted formula as a standalone [`Cnf`] plus the
    /// projection literals encoding `over`, for the counting/sampling
    /// layer (`llhsc-count`).
    ///
    /// The export reproduces the context's current assertion state:
    /// clauses belonging to open scopes stay guarded by their
    /// activation literal, and each open scope's activation literal is
    /// pinned true by a unit clause — exactly the assumption set a
    /// [`Context::check`] would use. `guards` names additional Boolean
    /// terms (e.g. a [`crate::SolverSession`] slice's activation
    /// guards) to pin true the same way, which is how projected
    /// analytics run over a single slice of a shared session. Terms in
    /// `over` that appear in no assertion are force-encoded so the
    /// projection is always complete.
    ///
    /// Returns `None` unless the context was created with
    /// [`Context::with_clause_log`].
    ///
    /// # Panics
    ///
    /// Panics if any term in `over` or `guards` is not Boolean.
    pub fn export_cnf(&mut self, over: &[TermId], guards: &[TermId]) -> Option<(Cnf, Vec<Lit>)> {
        for &t in over {
            self.expect_bool(t, "export_cnf");
        }
        for &t in guards {
            self.expect_bool(t, "export_cnf");
        }
        let projection: Vec<Lit> = over
            .iter()
            .map(|&t| self.blaster.bool_lit(&self.pool, &mut self.solver, t))
            .collect();
        let guard_lits: Vec<Lit> = guards
            .iter()
            .map(|&t| self.blaster.bool_lit(&self.pool, &mut self.solver, t))
            .collect();
        let logged = self.solver.logged_clauses()?;
        let mut cnf = Cnf::new();
        cnf.reserve_vars(self.solver.num_vars());
        for clause in logged {
            cnf.add_clause(clause.iter().copied());
        }
        for &act in &self.scopes {
            cnf.add_clause([act]);
        }
        for &g in &guard_lits {
            cnf.add_clause([g]);
        }
        Some((cnf, projection))
    }

    /// Attaches a trace context: from now on each solver call records a
    /// `"solve"` span (child of `trace`'s parent) annotated with the
    /// decisions/propagations/conflicts/restarts it cost and whether it
    /// came back sat. All solver entry points funnel through
    /// [`check_assuming`](Context::check_assuming), so this covers plain
    /// checks, witness queries and model enumeration alike. Each span's
    /// delta is measured since the *previous* traced solve (or since
    /// this call), so unit propagation performed while encoding between
    /// solves is attributed to the solve that consumes it. Work that
    /// happens *after* the last solve (such as the retraction clause
    /// [`pop`](Context::pop) adds) is folded into that solve's span when
    /// [`solver_stats`](Context::solver_stats) is next read — summing
    /// the spans reproduces the context's counter totals over the
    /// traced window exactly.
    pub fn set_trace(&mut self, trace: TraceCtx) {
        self.trace = Some(trace);
        self.trace_base.set(self.solver.stats());
        self.last_solve.set(None);
    }

    /// Installs an in-solve progress sink on the underlying SAT solver:
    /// every [`SolverConfig::heartbeat_every`] conflicts of any check
    /// made through this context emits one
    /// [`Heartbeat`](llhsc_sat::Heartbeat). Observation-only; verdicts,
    /// models and counters are unaffected.
    pub fn set_progress(&mut self, sink: std::sync::Arc<dyn ProgressSink>) {
        self.solver.set_progress(sink);
    }

    /// Removes the progress sink, if any.
    pub fn clear_progress(&mut self) {
        self.solver.clear_progress();
    }

    /// Detaches the trace context, if any, after folding trailing
    /// solver work into the last recorded solve span.
    pub fn clear_trace(&mut self) {
        self.flush_trace();
        self.trace = None;
        self.last_solve.set(None);
    }

    /// Attributes solver work performed since the last traced solve to
    /// that solve's span, so the trace stays in balance with the
    /// totals even when clauses are added outside any solve (scope
    /// retraction, blocking clauses after the final model).
    fn flush_trace(&self) {
        let (Some(trace), Some(span)) = (self.trace.as_ref(), self.last_solve.get()) else {
            return;
        };
        let now = self.solver.stats();
        let delta = now.delta_since(&self.trace_base.get());
        if delta == SolverStats::default() {
            return;
        }
        self.trace_base.set(now);
        trace.add(span, "solves", delta.solves);
        trace.add(span, "decisions", delta.decisions);
        trace.add(span, "propagations", delta.propagations);
        trace.add(span, "conflicts", delta.conflicts);
        trace.add(span, "restarts", delta.restarts);
    }

    /// The sort of a term.
    pub fn sort(&self, t: TermId) -> Sort {
        self.pool.sort(t)
    }

    /// Number of distinct terms created (hash-consed).
    pub fn num_terms(&self) -> usize {
        self.pool.len()
    }

    /// Statistics of the underlying SAT solver.
    ///
    /// When a trace is attached, any solver work recorded since the
    /// last solve is first folded into that solve's span, so a sum
    /// over the trace's solve spans always matches the returned
    /// totals.
    pub fn solver_stats(&self) -> SolverStats {
        self.flush_trace();
        self.solver.stats()
    }

    /// Term-pool and SAT-solver counters in one snapshot, for
    /// instrumentation of callers that want to report both.
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            terms: self.num_terms(),
            solver: self.solver_stats(),
        }
    }

    /// Renders a term as an SMT-LIB-flavoured s-expression.
    pub fn display(&self, t: TermId) -> String {
        let mut s = String::new();
        self.pool.display(t, &mut s);
        s
    }

    // ----- sort checking helpers -----

    fn expect_bool(&self, t: TermId, op: &str) {
        assert!(
            self.pool.sort(t) == Sort::Bool,
            "{op}: expected Bool operand, found {}",
            self.pool.sort(t)
        );
    }

    fn expect_bv(&self, t: TermId, op: &str) -> u32 {
        match self.pool.sort(t) {
            Sort::BitVec(w) => w,
            s => panic!("{op}: expected bit-vector operand, found {s}"),
        }
    }

    fn expect_same_width(&self, a: TermId, b: TermId, op: &str) -> u32 {
        let (wa, wb) = (self.expect_bv(a, op), self.expect_bv(b, op));
        assert!(wa == wb, "{op}: width mismatch ({wa} vs {wb})");
        wa
    }

    fn bv_const_value(&self, t: TermId) -> Option<u128> {
        match self.pool.get(t) {
            TermData::BvConst { value, .. } => Some(*value),
            _ => None,
        }
    }

    fn bool_const_value(&self, t: TermId) -> Option<bool> {
        match self.pool.get(t) {
            TermData::BoolConst(b) => Some(*b),
            _ => None,
        }
    }

    // ----- Boolean term builders -----

    /// The Boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.pool.mk(TermData::BoolConst(b), Sort::Bool)
    }

    /// A named Boolean variable. The same name always yields the same
    /// term (hash-consing), so variables are identified by name.
    pub fn bool_var(&mut self, name: &str) -> TermId {
        self.pool
            .mk(TermData::BoolVar(name.to_string()), Sort::Bool)
    }

    /// An integer-keyed Boolean variable, identified by `(tag, index)`.
    ///
    /// Equivalent to `bool_var(&format!("{tag}_{index}"))` but with no
    /// string allocation — the tag is interned once and the key is the
    /// integer, so hot loops minting per-item variable families
    /// (`base_0`, `base_1`, …) stay allocation-free after the first
    /// call. Diagnostics still render the familiar `tag_index` form.
    pub fn bool_var_i(&mut self, tag: &str, index: u64) -> TermId {
        let tag = self.pool.intern_str(tag);
        self.pool
            .mk(TermData::BoolVarIdx { tag, index }, Sort::Bool)
    }

    /// Logical negation (folds constants and double negation).
    pub fn not(&mut self, a: TermId) -> TermId {
        self.expect_bool(a, "not");
        if let Some(b) = self.bool_const_value(a) {
            return self.bool_const(!b);
        }
        if let TermData::Not(inner) = self.pool.get(a) {
            return *inner;
        }
        self.pool.mk(TermData::Not(a), Sort::Bool)
    }

    /// N-ary conjunction. `and([])` is `true`.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not of sort `Bool` (likewise for the
    /// other Boolean builders).
    pub fn and<I: IntoIterator<Item = TermId>>(&mut self, xs: I) -> TermId {
        let mut flat = Vec::new();
        for x in xs {
            self.expect_bool(x, "and");
            match self.bool_const_value(x) {
                Some(true) => continue,
                Some(false) => return self.bool_const(false),
                None => flat.push(x),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.bool_const(true),
            1 => flat[0],
            _ => self.pool.mk(TermData::And(flat), Sort::Bool),
        }
    }

    /// N-ary disjunction. `or([])` is `false`.
    pub fn or<I: IntoIterator<Item = TermId>>(&mut self, xs: I) -> TermId {
        let mut flat = Vec::new();
        for x in xs {
            self.expect_bool(x, "or");
            match self.bool_const_value(x) {
                Some(false) => continue,
                Some(true) => return self.bool_const(true),
                None => flat.push(x),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.bool_const(false),
            1 => flat[0],
            _ => self.pool.mk(TermData::Or(flat), Sort::Bool),
        }
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a, "xor");
        self.expect_bool(b, "xor");
        match (self.bool_const_value(a), self.bool_const_value(b)) {
            (Some(x), Some(y)) => self.bool_const(x ^ y),
            (Some(false), None) => b,
            (None, Some(false)) => a,
            (Some(true), None) => self.not(b),
            (None, Some(true)) => self.not(a),
            _ if a == b => self.bool_const(false),
            _ => self.pool.mk(TermData::Xor(a, b), Sort::Bool),
        }
    }

    /// Implication `a → b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a, "implies");
        self.expect_bool(b, "implies");
        match (self.bool_const_value(a), self.bool_const_value(b)) {
            (Some(false), _) | (_, Some(true)) => self.bool_const(true),
            (Some(true), _) => b,
            (_, Some(false)) => self.not(a),
            _ if a == b => self.bool_const(true),
            _ => self.pool.mk(TermData::Implies(a, b), Sort::Bool),
        }
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_bool(a, "iff");
        self.expect_bool(b, "iff");
        if a == b {
            return self.bool_const(true);
        }
        match (self.bool_const_value(a), self.bool_const_value(b)) {
            (Some(x), Some(y)) => self.bool_const(x == y),
            (Some(true), None) => b,
            (None, Some(true)) => a,
            (Some(false), None) => self.not(b),
            (None, Some(false)) => self.not(a),
            _ => self.pool.mk(TermData::Iff(a, b), Sort::Bool),
        }
    }

    /// If-then-else; `t` and `e` must have the same sort.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.expect_bool(c, "ite");
        assert!(
            self.pool.sort(t) == self.pool.sort(e),
            "ite: branch sorts differ ({} vs {})",
            self.pool.sort(t),
            self.pool.sort(e)
        );
        match self.bool_const_value(c) {
            Some(true) => t,
            Some(false) => e,
            None if t == e => t,
            None => {
                let sort = self.pool.sort(t);
                self.pool.mk(TermData::Ite(c, t, e), sort)
            }
        }
    }

    /// Equality at any sort. Operand sorts must match.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert!(
            self.pool.sort(a) == self.pool.sort(b),
            "eq: sorts differ ({} vs {})",
            self.pool.sort(a),
            self.pool.sort(b)
        );
        if a == b {
            return self.bool_const(true);
        }
        // Distinct constants of the same sort are never equal.
        let const_neq = matches!(
            (self.pool.get(a), self.pool.get(b)),
            (TermData::BvConst { .. }, TermData::BvConst { .. })
                | (TermData::StrConst(_), TermData::StrConst(_))
                | (TermData::BoolConst(_), TermData::BoolConst(_))
        );
        if const_neq {
            // Hash-consing makes equal constants identical, so reaching
            // here with two constants means they differ.
            return self.bool_const(false);
        }
        // Canonical argument order improves sharing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.pool.mk(TermData::Eq(a, b), Sort::Bool)
    }

    /// `true` iff at most `k` of the operands are true (unary-counter
    /// construction, O(n·k) terms). `at_most(_, 0)` is the negated
    /// disjunction.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not Boolean.
    pub fn at_most<I: IntoIterator<Item = TermId>>(&mut self, xs: I, k: usize) -> TermId {
        let lits: Vec<TermId> = xs.into_iter().collect();
        for &l in &lits {
            self.expect_bool(l, "at_most");
        }
        if lits.len() <= k {
            return self.bool_const(true);
        }
        // counts[j] = "at least j+1 of the literals seen so far are
        // true"; after all literals, counts[k] is "at least k+1", whose
        // negation is exactly at-most-k.
        let mut counts: Vec<TermId> = vec![self.bool_const(false); k + 1];
        for &l in &lits {
            let mut next = counts.clone();
            for j in (0..=k).rev() {
                let carried = if j == 0 {
                    l
                } else {
                    self.and([l, counts[j - 1]])
                };
                next[j] = self.or([counts[j], carried]);
            }
            counts = next;
        }
        self.not(counts[k])
    }

    /// `true` iff at least `k` of the operands are true.
    pub fn at_least<I: IntoIterator<Item = TermId>>(&mut self, xs: I, k: usize) -> TermId {
        let lits: Vec<TermId> = xs.into_iter().collect();
        if k == 0 {
            return self.bool_const(true);
        }
        if lits.len() < k {
            return self.bool_const(false);
        }
        // at_least_k(xs) == at_most_{n-k}(¬xs)
        let n = lits.len();
        let negs: Vec<TermId> = lits.iter().map(|&l| self.not(l)).collect();
        self.at_most(negs, n - k)
    }

    /// `true` iff exactly `k` of the operands are true.
    pub fn exactly<I: IntoIterator<Item = TermId>>(&mut self, xs: I, k: usize) -> TermId {
        let lits: Vec<TermId> = xs.into_iter().collect();
        let lo = self.at_least(lits.clone(), k);
        let hi = self.at_most(lits, k);
        self.and([lo, hi])
    }

    /// Pairwise disequality of all operands.
    pub fn distinct<I: IntoIterator<Item = TermId>>(&mut self, xs: I) -> TermId {
        let v: Vec<TermId> = xs.into_iter().collect();
        let mut parts = Vec::new();
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                let e = self.eq(v[i], v[j]);
                parts.push(self.not(e));
            }
        }
        self.and(parts)
    }

    // ----- bit-vector term builders -----

    /// A bit-vector constant of the given width (1..=128); `value` is
    /// truncated to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 128.
    pub fn bv_const(&mut self, value: u128, width: u32) -> TermId {
        assert!(
            (1..=128).contains(&width),
            "bit-vector width {width} out of range"
        );
        self.pool.mk(
            TermData::BvConst {
                width,
                value: mask(value, width),
            },
            Sort::BitVec(width),
        )
    }

    /// A named bit-vector variable.
    pub fn bv_var(&mut self, name: &str, width: u32) -> TermId {
        assert!(
            (1..=128).contains(&width),
            "bit-vector width {width} out of range"
        );
        self.pool.mk(
            TermData::BvVar {
                name: name.to_string(),
                width,
            },
            Sort::BitVec(width),
        )
    }

    /// An integer-keyed bit-vector variable (see [`Context::bool_var_i`]).
    pub fn bv_var_i(&mut self, tag: &str, index: u64, width: u32) -> TermId {
        assert!(
            (1..=128).contains(&width),
            "bit-vector width {width} out of range"
        );
        let tag = self.pool.intern_str(tag);
        self.pool.mk(
            TermData::BvVarIdx { tag, index, width },
            Sort::BitVec(width),
        )
    }

    fn bv_binop(
        &mut self,
        a: TermId,
        b: TermId,
        op: &str,
        fold: impl Fn(u128, u128, u32) -> u128,
        mk: impl Fn(TermId, TermId) -> TermData,
    ) -> TermId {
        let w = self.expect_same_width(a, b, op);
        if let (Some(x), Some(y)) = (self.bv_const_value(a), self.bv_const_value(b)) {
            return self.bv_const(fold(x, y, w), w);
        }
        self.pool.mk(mk(a, b), Sort::BitVec(w))
    }

    /// Wrapping addition.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            "bvadd",
            |x, y, w| mask(x.wrapping_add(y), w),
            TermData::BvAdd,
        )
    }

    /// Wrapping subtraction.
    pub fn bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            "bvsub",
            |x, y, w| mask(x.wrapping_sub(y), w),
            TermData::BvSub,
        )
    }

    /// Wrapping multiplication.
    pub fn bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            a,
            b,
            "bvmul",
            |x, y, w| mask(x.wrapping_mul(y), w),
            TermData::BvMul,
        )
    }

    /// Two's-complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        let w = self.expect_bv(a, "bvneg");
        if let Some(x) = self.bv_const_value(a) {
            return self.bv_const(mask(x.wrapping_neg(), w), w);
        }
        self.pool.mk(TermData::BvNeg(a), Sort::BitVec(w))
    }

    /// Bitwise and.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(a, b, "bvand", |x, y, _| x & y, TermData::BvAnd)
    }

    /// Bitwise or.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(a, b, "bvor", |x, y, _| x | y, TermData::BvOr)
    }

    /// Bitwise xor.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(a, b, "bvxor", |x, y, _| x ^ y, TermData::BvXor)
    }

    /// Bitwise complement.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let w = self.expect_bv(a, "bvnot");
        if let Some(x) = self.bv_const_value(a) {
            return self.bv_const(mask(!x, w), w);
        }
        self.pool.mk(TermData::BvNot(a), Sort::BitVec(w))
    }

    /// Logical shift left by a constant number of bits.
    pub fn bv_shl(&mut self, a: TermId, shift: u32) -> TermId {
        let w = self.expect_bv(a, "bvshl");
        if shift == 0 {
            return a;
        }
        if shift >= w {
            return self.bv_const(0, w);
        }
        if let Some(x) = self.bv_const_value(a) {
            return self.bv_const(mask(x << shift, w), w);
        }
        self.pool.mk(TermData::BvShl(a, shift), Sort::BitVec(w))
    }

    /// Logical shift right by a constant number of bits.
    pub fn bv_lshr(&mut self, a: TermId, shift: u32) -> TermId {
        let w = self.expect_bv(a, "bvlshr");
        if shift == 0 {
            return a;
        }
        if shift >= w {
            return self.bv_const(0, w);
        }
        if let Some(x) = self.bv_const_value(a) {
            return self.bv_const(x >> shift, w);
        }
        self.pool.mk(TermData::BvLshr(a, shift), Sort::BitVec(w))
    }

    /// Logical shift left by a symbolic amount of the same width;
    /// amounts ≥ width yield zero (SMT-LIB `bvshl` semantics).
    pub fn bv_shl_term(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.expect_same_width(a, b, "bvshl");
        if let (Some(x), Some(k)) = (self.bv_const_value(a), self.bv_const_value(b)) {
            let v = if k >= u128::from(w) {
                0
            } else {
                mask(x << k, w)
            };
            return self.bv_const(v, w);
        }
        self.pool.mk(TermData::BvShlV(a, b), Sort::BitVec(w))
    }

    /// Logical shift right by a symbolic amount of the same width;
    /// amounts ≥ width yield zero (SMT-LIB `bvlshr` semantics).
    pub fn bv_lshr_term(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.expect_same_width(a, b, "bvlshr");
        if let (Some(x), Some(k)) = (self.bv_const_value(a), self.bv_const_value(b)) {
            let v = if k >= u128::from(w) { 0 } else { x >> k };
            return self.bv_const(v, w);
        }
        self.pool.mk(TermData::BvLshrV(a, b), Sort::BitVec(w))
    }

    fn bv_cmp(
        &mut self,
        a: TermId,
        b: TermId,
        op: &str,
        fold: impl Fn(u128, u128, u32) -> bool,
        mk: impl Fn(TermId, TermId) -> TermData,
    ) -> TermId {
        let w = self.expect_same_width(a, b, op);
        if let (Some(x), Some(y)) = (self.bv_const_value(a), self.bv_const_value(b)) {
            return self.bool_const(fold(x, y, w));
        }
        self.pool.mk(mk(a, b), Sort::Bool)
    }

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(false);
        }
        self.bv_cmp(a, b, "bvult", |x, y, _| x < y, TermData::BvUlt)
    }

    /// Unsigned less-or-equal.
    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(true);
        }
        self.bv_cmp(a, b, "bvule", |x, y, _| x <= y, TermData::BvUle)
    }

    /// Unsigned greater-than (sugar for swapped [`Context::bv_ult`]).
    pub fn bv_ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ult(b, a)
    }

    /// Unsigned greater-or-equal (sugar for swapped [`Context::bv_ule`]).
    pub fn bv_uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ule(b, a)
    }

    fn to_signed(x: u128, w: u32) -> i128 {
        let sign = 1u128 << (w - 1);
        if x & sign != 0 {
            (x as i128) - ((sign as i128) << 1)
        } else {
            x as i128
        }
    }

    /// Signed less-than (two's complement).
    pub fn bv_slt(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(false);
        }
        self.bv_cmp(
            a,
            b,
            "bvslt",
            |x, y, w| Context::to_signed(x, w) < Context::to_signed(y, w),
            TermData::BvSlt,
        )
    }

    /// Signed less-or-equal (two's complement).
    pub fn bv_sle(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(true);
        }
        self.bv_cmp(
            a,
            b,
            "bvsle",
            |x, y, w| Context::to_signed(x, w) <= Context::to_signed(y, w),
            TermData::BvSle,
        )
    }

    /// Bits `lo..=hi` of `a` (bit 0 is the LSB); result width is
    /// `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is outside the operand width.
    pub fn bv_extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.expect_bv(a, "extract");
        assert!(
            hi >= lo && hi < w,
            "extract [{hi}:{lo}] out of range for width {w}"
        );
        if lo == 0 && hi == w - 1 {
            return a;
        }
        let nw = hi - lo + 1;
        if let Some(x) = self.bv_const_value(a) {
            return self.bv_const(mask(x >> lo, nw), nw);
        }
        self.pool
            .mk(TermData::Extract { hi, lo, arg: a }, Sort::BitVec(nw))
    }

    /// Concatenation `hi ++ lo`; `hi`'s bits become the most significant.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 128.
    pub fn bv_concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let wh = self.expect_bv(hi, "concat");
        let wl = self.expect_bv(lo, "concat");
        let w = wh + wl;
        assert!(w <= 128, "concat width {w} exceeds 128");
        if let (Some(x), Some(y)) = (self.bv_const_value(hi), self.bv_const_value(lo)) {
            return self.bv_const((x << wl) | y, w);
        }
        self.pool.mk(TermData::Concat(hi, lo), Sort::BitVec(w))
    }

    /// Zero-extends `a` by `extra` bits.
    pub fn bv_zero_ext(&mut self, a: TermId, extra: u32) -> TermId {
        let w = self.expect_bv(a, "zero_extend");
        if extra == 0 {
            return a;
        }
        assert!(w + extra <= 128, "zero_extend width exceeds 128");
        if let Some(x) = self.bv_const_value(a) {
            return self.bv_const(x, w + extra);
        }
        self.pool
            .mk(TermData::ZeroExt { arg: a, extra }, Sort::BitVec(w + extra))
    }

    // ----- string terms -----

    /// An interned string constant (the paper's encoding of node and
    /// property names as Z3 string/hybrid values).
    pub fn str_const(&mut self, s: &str) -> TermId {
        let id = self.pool.intern_str(s);
        assert!(
            (self.pool.num_interned() as u64) < (1u64 << STR_WIDTH),
            "string intern table overflow"
        );
        self.pool.mk(TermData::StrConst(id), Sort::Str)
    }

    /// A named string variable.
    pub fn str_var(&mut self, name: &str) -> TermId {
        self.pool.mk(TermData::StrVar(name.to_string()), Sort::Str)
    }

    // ----- assertions and solving -----

    /// Asserts a Boolean term in the current scope.
    ///
    /// # Panics
    ///
    /// Panics if the term is not of sort `Bool`.
    pub fn assert(&mut self, t: TermId) {
        self.expect_bool(t, "assert");
        let lit = self.blaster.bool_lit(&self.pool, &mut self.solver, t);
        match self.scopes.last().copied() {
            None => {
                self.solver.add_clause([lit]);
            }
            Some(act) => {
                self.solver.add_clause([!act, lit]);
            }
        }
        self.asserted
            .last_mut()
            .expect("ground scope always present")
            .push(t);
    }

    /// Asserts `guard → t` at the ground level as a single two-literal
    /// clause, with no Tseitin gate for the implication itself.
    ///
    /// This is the primitive behind assumption-guarded constraint
    /// slices (see [`SolverSession`](crate::SolverSession)): the
    /// constraint is permanent, but only binds in checks that pass
    /// `guard` as an assumption. Unlike [`Context::push`]-scoped
    /// assertions it is never retracted with a unit clause, so the
    /// slice can be re-activated arbitrarily often and learnt clauses
    /// about it stay useful.
    ///
    /// # Panics
    ///
    /// Panics if either term is not of sort `Bool`.
    pub fn assert_implied(&mut self, guard: TermId, t: TermId) {
        self.expect_bool(guard, "assert_implied");
        self.expect_bool(t, "assert_implied");
        let g = self.blaster.bool_lit(&self.pool, &mut self.solver, guard);
        let l = self.blaster.bool_lit(&self.pool, &mut self.solver, t);
        self.solver.add_clause([!g, l]);
    }

    /// `(cache hits, cache misses)` of the bit-blasting cache: how many
    /// term encodings were reused versus freshly lowered to gates.
    pub fn encode_counts(&self) -> (u64, u64) {
        self.blaster.encode_counts()
    }

    /// Lifetime allocation counters of the underlying SAT solver
    /// (variables, clauses, arena literal slots).
    pub fn alloc_stats(&self) -> llhsc_sat::AllocStats {
        self.solver.alloc_stats()
    }

    /// Opens a new assertion scope.
    pub fn push(&mut self) {
        let act = Lit::pos(self.solver.new_var());
        self.scopes.push(act);
        self.asserted.push(Vec::new());
    }

    /// Closes the innermost scope, retracting its assertions.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let act = self.scopes.pop().expect("pop without matching push");
        // Permanently disable the scope's clauses.
        self.solver.add_clause([!act]);
        self.asserted.pop();
        self.last_model = None;
    }

    /// Current scope depth (0 = ground).
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    /// Terms asserted in the current scope, for diagnostics.
    pub fn current_assertions(&self) -> &[TermId] {
        self.asserted.last().expect("ground scope always present")
    }

    /// Checks satisfiability of all live assertions.
    pub fn check(&mut self) -> CheckResult {
        self.check_assuming(&[])
    }

    /// Checks satisfiability under additional assumption terms (retracted
    /// automatically after the call). On `Unsat`,
    /// [`Context::unsat_core`] reports which assumptions were used.
    pub fn check_assuming(&mut self, assumptions: &[TermId]) -> CheckResult {
        self.assumption_lits.clear();
        self.last_core.clear();
        let mut lits: Vec<Lit> = self.scopes.clone();
        for &t in assumptions {
            self.expect_bool(t, "check_assuming");
            let l = self.blaster.bool_lit(&self.pool, &mut self.solver, t);
            self.assumption_lits.insert(l, t);
            lits.push(l);
        }
        let span = self
            .trace
            .as_ref()
            .map(|t| (t.clone(), t.begin("solve"), self.trace_base.get()));
        let mut certified: Option<DratOutcome> = None;
        let result = match self.solver.solve_with(&lits) {
            SolveResult::Sat => {
                self.last_model = Some(self.solver.model());
                CheckResult::Sat
            }
            SolveResult::Unsat => {
                self.last_model = None;
                let core: Vec<TermId> = self
                    .solver
                    .unsat_core()
                    .iter()
                    .filter_map(|cl| self.assumption_lits.get(&!*cl).copied())
                    .collect();
                self.last_core = core;
                if self.certify {
                    certified = Some(self.certify_last());
                }
                CheckResult::Unsat
            }
        };
        if let Some((trace, span, before)) = span {
            let now = self.solver.stats();
            self.trace_base.set(now);
            self.last_solve.set(Some(span));
            let delta = now.delta_since(&before);
            trace.add(span, "solves", delta.solves);
            trace.add(span, "decisions", delta.decisions);
            trace.add(span, "propagations", delta.propagations);
            trace.add(span, "conflicts", delta.conflicts);
            trace.add(span, "restarts", delta.restarts);
            trace.add(span, "sat", u64::from(result == CheckResult::Sat));
            // Only certifying contexts carry proof counters, so default
            // traces (and the golden report file) are unchanged.
            if let Some(out) = certified {
                trace.add(span, "proof_steps", out.steps as u64);
                trace.add(span, "proof_checked", out.checked as u64);
            }
            trace.finish(span);
        }
        result
    }

    /// Replays the proof of the refutation just produced through the
    /// in-tree backward DRAT checker.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not verify — that would mean the solver
    /// reported an `Unsat` verdict its own deduction log cannot justify,
    /// and certification exists precisely to stop such a verdict from
    /// leaving the building.
    fn certify_last(&mut self) -> DratOutcome {
        let mut cnf = Cnf::new();
        cnf.reserve_vars(self.solver.num_vars());
        let logged = self
            .solver
            .logged_clauses()
            .expect("certifying context records its formula");
        for clause in logged {
            cnf.add_clause(clause.iter().copied());
        }
        let proof = self
            .solver
            .proof()
            .expect("certifying context records a proof");
        let steps = proof.len() as u64;
        let outcome = match check_drat(&cnf, proof, CheckMode::Last) {
            Ok(out) => out,
            Err(err) => {
                panic!("soundness violation: UNSAT verdict failed DRAT certification: {err}")
            }
        };
        self.cert.proofs += 1;
        self.cert.steps = steps;
        self.cert.checked += outcome.checked as u64;
        outcome
    }

    /// Counters of the certification work done so far (zero for
    /// non-certifying contexts).
    pub fn cert_stats(&self) -> CertStats {
        self.cert
    }

    /// The accumulated formula and DRAT proof of a proof-recording
    /// context, for writing out as independently checkable artifacts
    /// (`llhsc check --proof`). `None` unless the context was created
    /// with [`Context::with_certification`].
    pub fn export_proof(&self) -> Option<(Cnf, Vec<ProofStep>)> {
        let proof = self.solver.proof()?;
        let logged = self.solver.logged_clauses()?;
        let mut cnf = Cnf::new();
        cnf.reserve_vars(self.solver.num_vars());
        for clause in logged {
            cnf.add_clause(clause.iter().copied());
        }
        Some((cnf, proof.to_vec()))
    }

    /// After an `Unsat` [`Context::check_assuming`], the subset of the
    /// assumption terms involved in the conflict.
    pub fn unsat_core(&self) -> &[TermId] {
        &self.last_core
    }

    /// Enumerates all models projected onto the given Boolean terms
    /// (All-SAT via blocking clauses), up to `limit` models if given.
    ///
    /// Each returned vector is aligned with `over`. The enumeration runs
    /// inside its own [`push`](Context::push)/[`pop`](Context::pop)
    /// scope, so the context's assertions are unchanged afterwards. This
    /// is how the feature-model layer implements the paper's
    /// "generation of all valid products" analysis (§II-B).
    ///
    /// # Panics
    ///
    /// Panics if `over` is empty or contains non-Boolean terms.
    pub fn all_models(&mut self, over: &[TermId], limit: Option<usize>) -> Vec<Vec<bool>> {
        assert!(!over.is_empty(), "all_models needs at least one term");
        for &t in over {
            self.expect_bool(t, "all_models");
        }
        // Force an encoding for every projection term so the model always
        // has a value for it, even if it appears in no assertion.
        for &t in over {
            let _ = self.blaster.bool_lit(&self.pool, &mut self.solver, t);
        }
        let mut out = Vec::new();
        self.push();
        loop {
            if limit.is_some_and(|l| out.len() >= l) {
                break;
            }
            if self.check() != CheckResult::Sat {
                break;
            }
            let m = self.model().expect("model after Sat");
            let values: Vec<bool> = over
                .iter()
                .map(|&t| m.eval_bool(t).expect("projection term has a value"))
                .collect();
            drop(m);
            // Block this projection.
            let parts: Vec<TermId> = over
                .iter()
                .zip(&values)
                .map(|(&t, &v)| if v { self.not(t) } else { t })
                .collect();
            let blocking = self.or(parts);
            self.assert(blocking);
            out.push(values);
        }
        self.pop();
        out
    }

    /// Counts models projected onto `over` (see [`Context::all_models`]).
    pub fn count_models(&mut self, over: &[TermId]) -> usize {
        self.all_models(over, None).len()
    }

    /// The model of the last `Sat` check, if any.
    pub fn model(&self) -> Option<Model<'_>> {
        self.last_model.as_ref().map(|bits| Model {
            ctx: self,
            bits: bits.clone(),
        })
    }
}

/// A satisfying assignment snapshot, tied to its [`Context`].
///
/// Only terms that participated in the last check (directly or as
/// subterms of asserted formulas) have values; evaluating anything else
/// yields `None`.
#[derive(Debug)]
pub struct Model<'a> {
    ctx: &'a Context,
    bits: Vec<bool>,
}

impl Model<'_> {
    /// Value of a Boolean term.
    pub fn eval_bool(&self, t: TermId) -> Option<bool> {
        match eval_in_model(&self.ctx.blaster, &self.bits, t)? {
            EvalValue::Bool(b) => Some(b),
            EvalValue::Bits(_) => None,
        }
    }

    /// Value of a bit-vector term.
    pub fn eval_bv(&self, t: TermId) -> Option<u128> {
        match (
            self.ctx.pool.sort(t),
            eval_in_model(&self.ctx.blaster, &self.bits, t)?,
        ) {
            (Sort::BitVec(_), EvalValue::Bits(v)) => Some(v),
            _ => None,
        }
    }

    /// Value of a string term, if it denotes an interned string.
    pub fn eval_str(&self, t: TermId) -> Option<&str> {
        match (
            self.ctx.pool.sort(t),
            eval_in_model(&self.ctx.blaster, &self.bits, t)?,
        ) {
            (Sort::Str, EvalValue::Bits(v)) => {
                let id = u32::try_from(v).ok()?;
                if (id as usize) < self.ctx.pool.num_interned() {
                    Some(self.ctx.pool.str_for(id))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_cnf_mirrors_the_context() {
        use llhsc_sat::ModelIter;

        let mut ctx = Context::with_clause_log();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let ab = ctx.or([a, b]);
        ctx.assert(ab);
        let (cnf, proj) = ctx.export_cnf(&[a, b], &[]).expect("logged context");
        assert_eq!(proj.len(), 2);
        let vars: Vec<_> = proj.iter().map(|l| l.var()).collect();
        let mut solver = cnf.to_solver();
        let bc = ModelIter::projected(&mut solver, vars).count_up_to(8);
        assert_eq!(bc.models, 3, "export must count like count_models");
        assert_eq!(ctx.count_models(&[a, b]), 3);
    }

    #[test]
    fn export_cnf_pins_open_scopes_and_drops_popped_ones() {
        use llhsc_sat::SolveResult;

        let mut ctx = Context::with_clause_log();
        let a = ctx.bool_var("a");
        ctx.push();
        let na = ctx.not(a);
        ctx.assert(na); // scoped: ¬a
        let (cnf, proj) = ctx.export_cnf(&[a], &[]).expect("logged context");
        let mut solver = cnf.to_solver();
        solver.add_clause([proj[0]]); // a, against the pinned scope's ¬a
        assert_eq!(solver.solve(), SolveResult::Unsat);

        ctx.pop();
        let (cnf, proj) = ctx.export_cnf(&[a], &[]).expect("logged context");
        let mut solver = cnf.to_solver();
        solver.add_clause([proj[0]]);
        assert_eq!(
            solver.solve(),
            SolveResult::Sat,
            "popped scope must not bind"
        );
    }

    #[test]
    fn export_cnf_needs_the_log() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        ctx.assert(a);
        assert!(ctx.export_cnf(&[a], &[]).is_none());
    }

    #[test]
    fn certified_unsat_checks_its_own_proof() {
        let mut ctx = Context::with_certification();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let ab = ctx.or([a, b]);
        let na = ctx.not(a);
        let nb = ctx.not(b);
        ctx.assert(ab);
        ctx.assert(na);
        ctx.assert(nb);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        let cert = ctx.cert_stats();
        assert_eq!(cert.proofs, 1, "one UNSAT verdict, one certified proof");
        assert!(cert.steps > 0);
        assert!(cert.checked > 0);
    }

    #[test]
    fn certified_proof_replays_through_a_fresh_checker() {
        use llhsc_sat::{check_drat, CheckMode};

        let mut ctx = Context::with_certification();
        let x = ctx.bv_var("x", 8);
        let lo = ctx.bv_const(10, 8);
        let hi = ctx.bv_const(5, 8);
        let ge = ctx.bv_ule(lo, x); // x >= 10
        let lt = ctx.bv_ult(x, hi); // x < 5
        ctx.assert(ge);
        ctx.assert(lt);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        let (cnf, proof) = ctx.export_proof().expect("certified context logs both");
        let out = check_drat(&cnf, &proof, CheckMode::Last).expect("exported proof verifies");
        assert!(out.checked > 0);
    }

    #[test]
    fn certification_counts_accumulate_across_unsat_scopes() {
        let mut ctx = Context::with_certification();
        let a = ctx.bool_var("a");
        ctx.assert(a);
        ctx.push();
        let na = ctx.not(a);
        ctx.assert(na);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
        assert_eq!(
            ctx.check(),
            CheckResult::Sat,
            "sat checks are not certified"
        );
        ctx.push();
        let na = ctx.not(a);
        ctx.assert(na);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.cert_stats().proofs, 2);
    }

    #[test]
    fn bool_logic_sat() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let i = ctx.implies(a, b);
        ctx.assert(a);
        ctx.assert(i);
        assert_eq!(ctx.check(), CheckResult::Sat);
        let m = ctx.model().unwrap();
        assert_eq!(m.eval_bool(a), Some(true));
        assert_eq!(m.eval_bool(b), Some(true));
    }

    #[test]
    fn traced_checks_record_solve_spans() {
        use llhsc_obs::{TraceCtx, Tracer};
        use std::sync::Arc;

        let tracer = Arc::new(Tracer::zeroed());
        let mut ctx = Context::new();
        ctx.set_trace(TraceCtx::new(Arc::clone(&tracer)));
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let ab = ctx.or([a, b]);
        ctx.assert(ab);
        assert_eq!(ctx.check(), CheckResult::Sat);
        let na = ctx.not(a);
        let nb = ctx.not(b);
        assert_eq!(ctx.check_assuming(&[na, nb]), CheckResult::Unsat);

        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.name == "solve"));
        assert!(spans.iter().all(|s| s.dur_us.is_some()));
        assert_eq!(spans[0].counter("sat"), Some(1));
        assert_eq!(spans[1].counter("sat"), Some(0));
        assert_eq!(spans[0].counter("solves"), Some(1));
        // Propagations happen on every solve that assigns variables.
        assert!(spans[0].counter("propagations").unwrap() > 0);
        // The span deltas sum to the solver's own totals.
        let total: u64 = spans.iter().filter_map(|s| s.counter("decisions")).sum();
        assert_eq!(total, ctx.solver_stats().decisions);

        ctx.clear_trace();
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(tracer.spans().len(), 2);
    }

    #[test]
    fn bool_logic_unsat() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let na = ctx.not(a);
        ctx.assert(a);
        ctx.assert(na);
        assert_eq!(ctx.check(), CheckResult::Unsat);
    }

    #[test]
    fn constant_folding() {
        let mut ctx = Context::new();
        let t = ctx.bool_const(true);
        let f = ctx.bool_const(false);
        assert_eq!(ctx.and([t, f]), f);
        assert_eq!(ctx.or([t, f]), t);
        assert_eq!(ctx.not(t), f);
        let a = ctx.bool_var("a");
        assert_eq!(ctx.and([a, t]), a);
        assert_eq!(ctx.implies(f, a), t);
        let x = ctx.bv_const(3, 8);
        let y = ctx.bv_const(5, 8);
        let s = ctx.bv_add(x, y);
        assert_eq!(ctx.bv_const(8, 8), s);
        let c = ctx.bv_ult(x, y);
        assert_eq!(c, t);
    }

    #[test]
    fn bv_arith_model() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 16);
        let five = ctx.bv_const(5, 16);
        let sum = ctx.bv_add(x, five);
        let target = ctx.bv_const(12, 16);
        let e = ctx.eq(sum, target);
        ctx.assert(e);
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(ctx.model().unwrap().eval_bv(x), Some(7));
    }

    #[test]
    fn bv_mul_model() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 8);
        let y = ctx.bv_var("y", 8);
        let p = ctx.bv_mul(x, y);
        let target = ctx.bv_const(35, 8);
        let e = ctx.eq(p, target);
        ctx.assert(e);
        let two = ctx.bv_const(2, 8);
        let gx = ctx.bv_ugt(x, two);
        let gy = ctx.bv_ugt(y, two);
        ctx.assert(gx);
        ctx.assert(gy);
        assert_eq!(ctx.check(), CheckResult::Sat);
        let m = ctx.model().unwrap();
        let (vx, vy) = (m.eval_bv(x).unwrap(), m.eval_bv(y).unwrap());
        assert_eq!((vx * vy) & 0xff, 35);
        assert!(vx > 2 && vy > 2);
    }

    #[test]
    fn bv_overflow_wraps() {
        let mut ctx = Context::new();
        let x = ctx.bv_const(0xff, 8);
        let one = ctx.bv_const(1, 8);
        let s = ctx.bv_add(x, one);
        assert_eq!(ctx.bv_const(0, 8), s);
    }

    #[test]
    fn signed_compare() {
        let mut ctx = Context::new();
        let minus_one = ctx.bv_const(0xff, 8);
        let one = ctx.bv_const(1, 8);
        let t = ctx.bool_const(true);
        let slt = ctx.bv_slt(minus_one, one);
        assert_eq!(slt, t);
        let ult = ctx.bv_ult(minus_one, one);
        assert_eq!(ult, ctx.bool_const(false));
    }

    #[test]
    fn signed_compare_symbolic() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 8);
        let zero = ctx.bv_const(0, 8);
        let neg = ctx.bv_slt(x, zero);
        let hi = ctx.bv_const(0x7f, 8);
        let big = ctx.bv_ugt(x, hi);
        ctx.assert(neg);
        // Negative in signed terms == MSB set == unsigned > 0x7f.
        let nb = ctx.not(big);
        ctx.push();
        ctx.assert(nb);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
        ctx.assert(big);
        assert_eq!(ctx.check(), CheckResult::Sat);
    }

    #[test]
    fn extract_concat_roundtrip() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 16);
        let hi = ctx.bv_extract(x, 15, 8);
        let lo = ctx.bv_extract(x, 7, 0);
        let back = ctx.bv_concat(hi, lo);
        let e = ctx.eq(back, x);
        let ne = ctx.not(e);
        ctx.assert(ne);
        assert_eq!(ctx.check(), CheckResult::Unsat);
    }

    #[test]
    fn shifts() {
        let mut ctx = Context::new();
        let x = ctx.bv_const(0b1011, 8);
        assert_eq!(ctx.bv_shl(x, 2), ctx.bv_const(0b101100, 8));
        assert_eq!(ctx.bv_lshr(x, 1), ctx.bv_const(0b101, 8));
        assert_eq!(ctx.bv_shl(x, 9), ctx.bv_const(0, 8));
        let y = ctx.bv_var("y", 8);
        assert_eq!(ctx.bv_shl(y, 0), y);
    }

    #[test]
    fn push_pop_retracts() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        ctx.assert(a);
        ctx.push();
        let na = ctx.not(a);
        ctx.assert(na);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(ctx.scope_depth(), 0);
    }

    #[test]
    fn nested_scopes() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        ctx.push();
        ctx.assert(a);
        ctx.push();
        let nb = ctx.not(b);
        ctx.assert(nb);
        ctx.assert(b);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(ctx.model().unwrap().eval_bool(a), Some(true));
        ctx.pop();
        assert_eq!(ctx.check(), CheckResult::Sat);
    }

    #[test]
    fn unsat_core_names_assumptions() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let c = ctx.bool_var("c");
        let na = ctx.not(a);
        let nab = ctx.or([na, b]);
        ctx.assert(nab); // a → b
        let nb = ctx.not(b);
        let r = ctx.check_assuming(&[a, nb, c]);
        assert_eq!(r, CheckResult::Unsat);
        let core = ctx.unsat_core().to_vec();
        assert!(core.contains(&a));
        assert!(core.contains(&nb));
        assert!(!core.contains(&c));
    }

    #[test]
    fn strings_intern_and_compare() {
        let mut ctx = Context::new();
        let m1 = ctx.str_const("memory");
        let m2 = ctx.str_const("memory");
        let r = ctx.str_const("reg");
        assert_eq!(m1, m2);
        let e = ctx.eq(m1, m2);
        assert_eq!(e, ctx.bool_const(true));
        let e2 = ctx.eq(m1, r);
        assert_eq!(e2, ctx.bool_const(false));
    }

    #[test]
    fn string_var_solves_to_interned() {
        let mut ctx = Context::new();
        let x = ctx.str_var("device_type");
        let mem = ctx.str_const("memory");
        let e = ctx.eq(x, mem);
        ctx.assert(e);
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(ctx.model().unwrap().eval_str(x), Some("memory"));
    }

    #[test]
    fn ite_over_bitvectors() {
        let mut ctx = Context::new();
        let c = ctx.bool_var("c");
        let a = ctx.bv_const(10, 8);
        let b = ctx.bv_const(20, 8);
        let sel = ctx.ite(c, a, b);
        let e = ctx.eq(sel, a);
        ctx.assert(e);
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(ctx.model().unwrap().eval_bool(c), Some(true));
    }

    #[test]
    fn distinct_pairwise() {
        let mut ctx = Context::new();
        let xs: Vec<TermId> = (0..3).map(|i| ctx.bv_var(&format!("x{i}"), 2)).collect();
        let d = ctx.distinct(xs.clone());
        ctx.assert(d);
        assert_eq!(ctx.check(), CheckResult::Sat);
        let m = ctx.model().unwrap();
        let vals: Vec<u128> = xs.iter().map(|&x| m.eval_bv(x).unwrap()).collect();
        assert_ne!(vals[0], vals[1]);
        assert_ne!(vals[0], vals[2]);
        assert_ne!(vals[1], vals[2]);
    }

    #[test]
    fn distinct_four_in_two_bits_unsat() {
        let mut ctx = Context::new();
        let xs: Vec<TermId> = (0..5).map(|i| ctx.bv_var(&format!("x{i}"), 2)).collect();
        let d = ctx.distinct(xs);
        ctx.assert(d);
        assert_eq!(ctx.check(), CheckResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut ctx = Context::new();
        let a = ctx.bv_var("a", 8);
        let b = ctx.bv_var("b", 16);
        let _ = ctx.bv_add(a, b);
    }

    #[test]
    #[should_panic(expected = "expected Bool")]
    fn assert_non_bool_panics() {
        let mut ctx = Context::new();
        let a = ctx.bv_var("a", 8);
        ctx.assert(a);
    }

    #[test]
    fn display_sexpr() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let f = ctx.implies(a, b);
        assert_eq!(ctx.display(f), "(=> a b)");
    }

    #[test]
    fn cardinality_counts_models() {
        // Over 4 free variables, the number of models of at_most/
        // at_least/exactly matches binomial arithmetic.
        let choose = |n: u64, k: u64| -> u64 { (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1)) };
        for k in 0..=4usize {
            let mut ctx = Context::new();
            let xs: Vec<TermId> = (0..4).map(|i| ctx.bool_var(&format!("x{i}"))).collect();
            let c = ctx.at_most(xs.clone(), k);
            ctx.assert(c);
            let expected: u64 = (0..=k as u64).map(|j| choose(4, j)).sum();
            assert_eq!(ctx.count_models(&xs) as u64, expected, "at_most {k}");

            let mut ctx = Context::new();
            let xs: Vec<TermId> = (0..4).map(|i| ctx.bool_var(&format!("x{i}"))).collect();
            let c = ctx.exactly(xs.clone(), k);
            ctx.assert(c);
            assert_eq!(
                ctx.count_models(&xs) as u64,
                choose(4, k as u64),
                "exactly {k}"
            );

            let mut ctx = Context::new();
            let xs: Vec<TermId> = (0..4).map(|i| ctx.bool_var(&format!("x{i}"))).collect();
            let c = ctx.at_least(xs.clone(), k);
            ctx.assert(c);
            let expected: u64 = (k as u64..=4).map(|j| choose(4, j)).sum();
            assert_eq!(ctx.count_models(&xs) as u64, expected, "at_least {k}");
        }
    }

    #[test]
    fn cardinality_edge_cases() {
        let mut ctx = Context::new();
        let t = ctx.bool_const(true);
        // Fewer operands than k: trivially satisfied / unsatisfiable.
        let a = ctx.bool_var("a");
        let am = ctx.at_most([a], 5);
        assert_eq!(am, t);
        let al = ctx.at_least([a], 5);
        assert_eq!(al, ctx.bool_const(false));
        let al0 = ctx.at_least(Vec::<TermId>::new(), 0);
        assert_eq!(al0, t);
    }

    #[test]
    fn all_models_enumerates_projections() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let c = ctx.or([a, b]);
        ctx.assert(c);
        let models = ctx.all_models(&[a, b], None);
        assert_eq!(models.len(), 3);
        // Context unchanged: still satisfiable the same way.
        assert_eq!(ctx.count_models(&[a, b]), 3);
        assert_eq!(ctx.scope_depth(), 0);
    }

    #[test]
    fn all_models_respects_limit() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let models = ctx.all_models(&[a, b], Some(2));
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn all_models_unsat_is_empty() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let na = ctx.not(a);
        ctx.assert(a);
        ctx.assert(na);
        assert!(ctx.all_models(&[a], None).is_empty());
    }

    #[test]
    fn all_models_on_free_variables() {
        // Projection terms that appear in no assertion still enumerate.
        let mut ctx = Context::new();
        let a = ctx.bool_var("free_a");
        let b = ctx.bool_var("free_b");
        assert_eq!(ctx.count_models(&[a, b]), 4);
    }

    #[test]
    fn indexed_vars_dedup_and_display() {
        let mut ctx = Context::new();
        let a = ctx.bool_var_i("sel", 3);
        let a2 = ctx.bool_var_i("sel", 3);
        let b = ctx.bool_var_i("sel", 4);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(ctx.display(a), "sel_3");
        let x = ctx.bv_var_i("base", 7, 32);
        assert_eq!(x, ctx.bv_var_i("base", 7, 32));
        assert_eq!(ctx.display(x), "base_7");
        assert_eq!(ctx.sort(x), Sort::BitVec(32));
        // Solvable like any named variable.
        let c = ctx.bv_const(5, 32);
        let e = ctx.eq(x, c);
        ctx.assert(e);
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(ctx.model().unwrap().eval_bv(x), Some(5));
    }

    #[test]
    fn assert_implied_binds_only_under_guard() {
        let mut ctx = Context::new();
        let g = ctx.bool_var("g");
        let p = ctx.bool_var("p");
        let np = ctx.not(p);
        ctx.assert_implied(g, np);
        ctx.assert(p);
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(ctx.check_assuming(&[g]), CheckResult::Unsat);
        // Guarded constraints are never retracted, only deactivated.
        assert_eq!(ctx.check(), CheckResult::Sat);
    }

    #[test]
    fn encode_counts_track_reuse() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 8);
        let three = ctx.bv_const(3, 8);
        let sum = ctx.bv_add(x, three);
        let five = ctx.bv_const(5, 8);
        let e1 = ctx.eq(sum, five);
        ctx.assert(e1);
        let (h0, m0) = ctx.encode_counts();
        assert!(m0 > 0);
        // A second formula over the same `x + 3` hits the cache.
        let nine = ctx.bv_const(9, 8);
        let e2 = ctx.eq(sum, nine);
        ctx.assert(e2);
        let (h1, m1) = ctx.encode_counts();
        assert!(h1 > h0, "shared subterm should be a cache hit");
        assert!(m1 > m0, "the new equality is a fresh encoding");
    }

    #[test]
    fn incremental_reuse_after_pop() {
        // The motivating usage from the paper: one growing instance.
        let mut ctx = Context::new();
        let base = ctx.bv_var("base", 32);
        let lim = ctx.bv_const(0x1000, 32);
        let c = ctx.bv_ult(base, lim);
        ctx.assert(c);
        for k in 0..5u32 {
            ctx.push();
            let v = ctx.bv_const(u128::from(k) * 0x100, 32);
            let e = ctx.eq(base, v);
            ctx.assert(e);
            assert_eq!(ctx.check(), CheckResult::Sat);
            assert_eq!(
                ctx.model().unwrap().eval_bv(base),
                Some(u128::from(k) * 0x100)
            );
            ctx.pop();
        }
        let bad = ctx.bv_const(0x2000, 32);
        let e = ctx.eq(base, bad);
        ctx.push();
        ctx.assert(e);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
    }
}

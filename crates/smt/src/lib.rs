//! A small SMT layer over [`llhsc_sat`]: Boolean structure, fixed-width
//! bit-vectors and interned strings, decided by bit-blasting to SAT.
//!
//! The llhsc paper discharges three constraint families through Z3:
//!
//! 1. propositional feature-model formulas (§IV-A),
//! 2. first-order schema constraints whose only non-Boolean atoms are
//!    *string equalities* between property names (§IV-B, constraints
//!    (1)–(6)), and
//! 3. bit-vector constraints over memory addresses (§IV-C, formula (7)),
//!    which the paper notes Z3 decides by **bit-blasting into SAT**.
//!
//! This crate implements exactly that fragment: Boolean connectives via
//! the Tseitin transform, bit-vectors via gate-level bit-blasting, and
//! strings via interning into bit-vector constants (the paper's "hybrid
//! theory" encoding of names). The [`Context`] is incremental in the
//! same way Z3 is used by the paper — constraints can be added to the
//! same solver instance across [`Context::push`]/[`Context::pop`] scopes
//! — and supports assumption-based [unsat cores](Context::unsat_core) so
//! a failed check names the constraint group that caused it.
//!
//! # Example
//!
//! ```
//! use llhsc_smt::{Context, CheckResult};
//!
//! let mut ctx = Context::new();
//! let base = ctx.bv_var("base", 64);
//! let lo = ctx.bv_const(0x4000_0000, 64);
//! let hi = ctx.bv_const(0x8000_0000, 64);
//! let in_range = {
//!     let ge = ctx.bv_ule(lo, base);
//!     let lt = ctx.bv_ult(base, hi);
//!     ctx.and([ge, lt])
//! };
//! ctx.assert(in_range);
//! assert_eq!(ctx.check(), CheckResult::Sat);
//! let m = ctx.model().unwrap();
//! let v = m.eval_bv(base).unwrap();
//! assert!((0x4000_0000..0x8000_0000).contains(&v));
//! ```

mod bitblast;
mod context;
mod session;
mod term;

pub use context::{CertStats, CheckResult, Context, ContextStats, Model};
pub use llhsc_sat::{
    check_drat, parse_dimacs, parse_drat, write_dimacs, write_drat, AllocStats, CheckMode, Cnf,
    DratError, DratOutcome, ProofStep, SolverConfig, SolverStats,
};
pub use session::{slice_key, SessionStats, Slice, SolverSession};
pub use term::{Sort, TermId};

//! Property-based tests: bit-blasted bit-vector semantics against native
//! `u64`/`i64` arithmetic.
//!
//! For each operation we assert `op(x, y) != expected` for concrete x, y
//! and require UNSAT — i.e. the gate network provably computes the same
//! function as the reference implementation on those inputs. Inputs are
//! fed in as *variables constrained by equality* (not constants) so the
//! constant folder cannot short-circuit the gate network under test.

use llhsc_smt::{CheckResult, Context, TermId};
use proptest::prelude::*;

fn mask(v: u64, w: u32) -> u64 {
    if w >= 64 {
        v
    } else {
        v & ((1u64 << w) - 1)
    }
}

/// Builds variables x, y of width `w` pinned to the given values via
/// asserted equalities.
fn pinned_vars(ctx: &mut Context, w: u32, x: u64, y: u64) -> (TermId, TermId) {
    let xv = ctx.bv_var("x", w);
    let yv = ctx.bv_var("y", w);
    let xc = ctx.bv_const(u128::from(mask(x, w)), w);
    let yc = ctx.bv_const(u128::from(mask(y, w)), w);
    let ex = ctx.eq(xv, xc);
    let ey = ctx.eq(yv, yc);
    ctx.assert(ex);
    ctx.assert(ey);
    (xv, yv)
}

/// Asserts that `term != expected` is UNSAT, i.e. term == expected.
fn assert_equals(ctx: &mut Context, term: TermId, expected: u64, w: u32) -> bool {
    let e = ctx.bv_const(u128::from(mask(expected, w)), w);
    let eq = ctx.eq(term, e);
    let ne = ctx.not(eq);
    ctx.assert(ne);
    ctx.check() == CheckResult::Unsat
}

fn assert_bool(ctx: &mut Context, term: TermId, expected: bool) -> bool {
    let e = ctx.bool_const(expected);
    let eq = ctx.iff(term, e);
    let ne = ctx.not(eq);
    ctx.assert(ne);
    ctx.check() == CheckResult::Unsat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_matches(x in any::<u64>(), y in any::<u64>(), w in 1u32..=64) {
        let mut ctx = Context::new();
        let (xv, yv) = pinned_vars(&mut ctx, w, x, y);
        let t = ctx.bv_add(xv, yv);
        prop_assert!(assert_equals(&mut ctx, t, mask(x, w).wrapping_add(mask(y, w)), w));
    }

    #[test]
    fn sub_matches(x in any::<u64>(), y in any::<u64>(), w in 1u32..=64) {
        let mut ctx = Context::new();
        let (xv, yv) = pinned_vars(&mut ctx, w, x, y);
        let t = ctx.bv_sub(xv, yv);
        prop_assert!(assert_equals(&mut ctx, t, mask(x, w).wrapping_sub(mask(y, w)), w));
    }

    #[test]
    fn mul_matches(x in any::<u64>(), y in any::<u64>(), w in 1u32..=16) {
        // Multiplication networks are O(w²); small widths keep this fast.
        let mut ctx = Context::new();
        let (xv, yv) = pinned_vars(&mut ctx, w, x, y);
        let t = ctx.bv_mul(xv, yv);
        prop_assert!(assert_equals(&mut ctx, t, mask(x, w).wrapping_mul(mask(y, w)), w));
    }

    #[test]
    fn neg_matches(x in any::<u64>(), w in 1u32..=64) {
        let mut ctx = Context::new();
        let (xv, _) = pinned_vars(&mut ctx, w, x, 0);
        let t = ctx.bv_neg(xv);
        prop_assert!(assert_equals(&mut ctx, t, mask(x, w).wrapping_neg(), w));
    }

    #[test]
    fn bitwise_matches(x in any::<u64>(), y in any::<u64>(), w in 1u32..=64) {
        let mut ctx = Context::new();
        let (xv, yv) = pinned_vars(&mut ctx, w, x, y);
        let t_and = ctx.bv_and(xv, yv);
        let t_or = ctx.bv_or(xv, yv);
        let t_xor = ctx.bv_xor(xv, yv);
        let t_not = ctx.bv_not(xv);
        let ok_and = {
            let e = ctx.bv_const(u128::from(mask(x, w) & mask(y, w)), w);

            ctx.eq(t_and, e)
        };
        let ok_or = {
            let e = ctx.bv_const(u128::from(mask(x, w) | mask(y, w)), w);
            ctx.eq(t_or, e)
        };
        let ok_xor = {
            let e = ctx.bv_const(u128::from(mask(x, w) ^ mask(y, w)), w);
            ctx.eq(t_xor, e)
        };
        let ok_not = {
            let e = ctx.bv_const(u128::from(mask(!mask(x, w), w)), w);
            ctx.eq(t_not, e)
        };
        let all = ctx.and([ok_and, ok_or, ok_xor, ok_not]);
        let ne = ctx.not(all);
        ctx.assert(ne);
        prop_assert_eq!(ctx.check(), CheckResult::Unsat);
    }

    #[test]
    fn unsigned_compare_matches(x in any::<u64>(), y in any::<u64>(), w in 1u32..=64) {
        let (mx, my) = (mask(x, w), mask(y, w));
        let mut ctx = Context::new();
        let (xv, yv) = pinned_vars(&mut ctx, w, x, y);
        let t = ctx.bv_ult(xv, yv);
        prop_assert!(assert_bool(&mut ctx, t, mx < my));

        let mut ctx = Context::new();
        let (xv, yv) = pinned_vars(&mut ctx, w, x, y);
        let t = ctx.bv_ule(xv, yv);
        prop_assert!(assert_bool(&mut ctx, t, mx <= my));
    }

    #[test]
    fn signed_compare_matches(x in any::<u64>(), y in any::<u64>(), w in 2u32..=64) {
        let sign = |v: u64| -> i128 {
            let m = mask(v, w);
            if m >> (w - 1) & 1 == 1 {
                m as i128 - (1i128 << w)
            } else {
                m as i128
            }
        };
        let mut ctx = Context::new();
        let (xv, yv) = pinned_vars(&mut ctx, w, x, y);
        let t = ctx.bv_slt(xv, yv);
        prop_assert!(assert_bool(&mut ctx, t, sign(x) < sign(y)));

        let mut ctx = Context::new();
        let (xv, yv) = pinned_vars(&mut ctx, w, x, y);
        let t = ctx.bv_sle(xv, yv);
        prop_assert!(assert_bool(&mut ctx, t, sign(x) <= sign(y)));
    }

    #[test]
    fn shifts_match(x in any::<u64>(), w in 1u32..=64, k in 0u32..64) {
        let k = k % w;
        let mut ctx = Context::new();
        let (xv, _) = pinned_vars(&mut ctx, w, x, 0);
        let t = ctx.bv_shl(xv, k);
        prop_assert!(assert_equals(&mut ctx, t, mask(x, w) << k, w));

        let mut ctx = Context::new();
        let (xv, _) = pinned_vars(&mut ctx, w, x, 0);
        let t = ctx.bv_lshr(xv, k);
        prop_assert!(assert_equals(&mut ctx, t, mask(x, w) >> k, w));
    }

    #[test]
    fn extract_matches(x in any::<u64>(), w in 2u32..=64, a in 0u32..64, b in 0u32..64) {
        let (hi, lo) = ((a.max(b)) % w, (a.min(b)) % w);
        let (hi, lo) = (hi.max(lo), lo.min(hi));
        let nw = hi - lo + 1;
        let mut ctx = Context::new();
        let (xv, _) = pinned_vars(&mut ctx, w, x, 0);
        let t = ctx.bv_extract(xv, hi, lo);
        prop_assert!(assert_equals(&mut ctx, t, mask(mask(x, w) >> lo, nw), nw));
    }

    #[test]
    fn concat_matches(x in any::<u32>(), y in any::<u32>(), wh in 1u32..=32, wl in 1u32..=32) {
        let (mx, my) = (mask(x.into(), wh), mask(y.into(), wl));
        let mut ctx = Context::new();
        let hv = ctx.bv_var("h", wh);
        let lv = ctx.bv_var("l", wl);
        let hc = ctx.bv_const(u128::from(mx), wh);
        let lc = ctx.bv_const(u128::from(my), wl);
        let eh = ctx.eq(hv, hc);
        let el = ctx.eq(lv, lc);
        ctx.assert(eh);
        ctx.assert(el);
        let t = ctx.bv_concat(hv, lv);
        prop_assert!(assert_equals(&mut ctx, t, (mx << wl) | my, wh + wl));
    }

    #[test]
    fn zero_ext_matches(x in any::<u64>(), w in 1u32..=32, extra in 0u32..=32) {
        let mut ctx = Context::new();
        let (xv, _) = pinned_vars(&mut ctx, w, x, 0);
        let t = ctx.bv_zero_ext(xv, extra);
        prop_assert!(assert_equals(&mut ctx, t, mask(x, w), w + extra));
    }

    #[test]
    fn symbolic_shifts_match(x in any::<u64>(), k in any::<u8>(), w in 1u32..=64) {
        // The amount operand is itself w bits wide, so the effective
        // amount is k mod 2^w; SMT-LIB semantics then give zero for
        // effective amounts >= width (still reachable for every w).
        let k = mask(u64::from(k), w);
        let expected_shl = if k >= u64::from(w) { 0 } else { mask(mask(x, w) << k, w) };
        let expected_shr = if k >= u64::from(w) { 0 } else { mask(x, w) >> k };

        let mut ctx = Context::new();
        let (xv, kv) = pinned_vars(&mut ctx, w, x, k);
        let t = ctx.bv_shl_term(xv, kv);
        prop_assert!(assert_equals(&mut ctx, t, expected_shl, w));

        let mut ctx = Context::new();
        let (xv, kv) = pinned_vars(&mut ctx, w, x, k);
        let t = ctx.bv_lshr_term(xv, kv);
        prop_assert!(assert_equals(&mut ctx, t, expected_shr, w));
    }

    /// Folded (constant) and blasted (variable) paths agree on add/mul.
    #[test]
    fn folding_agrees_with_blasting(x in any::<u16>(), y in any::<u16>()) {
        let mut ctx = Context::new();
        let xc = ctx.bv_const(u128::from(x), 16);
        let yc = ctx.bv_const(u128::from(y), 16);
        let folded = ctx.bv_add(xc, yc); // folds to a constant
        let (xv, yv) = pinned_vars(&mut ctx, 16, x.into(), y.into());
        let blasted = ctx.bv_add(xv, yv);
        let eq = ctx.eq(folded, blasted);
        let ne = ctx.not(eq);
        ctx.assert(ne);
        prop_assert_eq!(ctx.check(), CheckResult::Unsat);
    }
}

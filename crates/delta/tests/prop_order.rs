//! Property tests: the delta application order is a deterministic
//! linear extension of the (active) `after` partial order.

use llhsc_delta::{DeltaModule, ProductLine};
use llhsc_dts::DeviceTree;
use proptest::prelude::*;

/// Generates an acyclic delta set: delta i may only list `after`
/// dependencies on deltas with smaller indices, each guarded by one of
/// three features.
fn arb_deltas(max: usize) -> impl Strategy<Value = Vec<(Vec<usize>, u8)>> {
    prop::collection::vec(
        (
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
            0u8..3,
        ),
        1..=max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (deps, feat))| {
                let after: Vec<usize> = if i == 0 {
                    Vec::new()
                } else {
                    let mut d: Vec<usize> = deps.into_iter().map(|ix| ix.index(i)).collect();
                    d.sort_unstable();
                    d.dedup();
                    d
                };
                (after, feat)
            })
            .collect()
    })
}

fn build(specs: &[(Vec<usize>, u8)]) -> Vec<DeltaModule> {
    let mut src = String::new();
    for (i, (after, feat)) in specs.iter().enumerate() {
        let after_clause = if after.is_empty() {
            String::new()
        } else {
            format!(
                " after {}",
                after
                    .iter()
                    .map(|j| format!("dl{j}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        src.push_str(&format!(
            "delta dl{i}{after_clause} when f{feat} {{ modifies / {{ p{i} = <{i}>; }}; }}\n"
        ));
    }
    DeltaModule::parse_all(&src).expect("generated deltas parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The computed order is a linear extension: every active `after`
    /// dependency appears earlier.
    #[test]
    fn order_is_linear_extension(
        specs in arb_deltas(10),
        sel_mask in 0u8..8,
    ) {
        let deltas = build(&specs);
        let line = ProductLine::new(DeviceTree::new(), deltas);
        let selection: Vec<&str> = ["f0", "f1", "f2"]
            .iter()
            .enumerate()
            .filter(|(i, _)| (sel_mask >> i) & 1 == 1)
            .map(|(_, s)| *s)
            .collect();
        let order = line.order(&selection).expect("acyclic by construction");
        let names: Vec<&str> = order.iter().map(|d| d.name.as_str()).collect();
        for d in &order {
            let my_pos = names.iter().position(|n| *n == d.name).expect("present");
            for dep in &d.after {
                if let Some(dep_pos) = names.iter().position(|n| n == dep) {
                    prop_assert!(
                        dep_pos < my_pos,
                        "{} must come before {}", dep, d.name
                    );
                }
            }
        }
    }

    /// Ordering and derivation are deterministic: two runs agree.
    #[test]
    fn order_is_deterministic(specs in arb_deltas(10), sel_mask in 0u8..8) {
        let deltas = build(&specs);
        let line = ProductLine::new(DeviceTree::new(), deltas);
        let selection: Vec<&str> = ["f0", "f1", "f2"]
            .iter()
            .enumerate()
            .filter(|(i, _)| (sel_mask >> i) & 1 == 1)
            .map(|(_, s)| *s)
            .collect();
        let a = line.derive(&selection).expect("derives");
        let b = line.derive(&selection).expect("derives");
        prop_assert_eq!(a.order, b.order);
        prop_assert_eq!(a.tree, b.tree);
    }

    /// Exactly the active deltas are applied: a delta's property marker
    /// is on the root iff its guard feature was selected.
    #[test]
    fn activation_is_exact(specs in arb_deltas(8), sel_mask in 0u8..8) {
        let deltas = build(&specs);
        let line = ProductLine::new(DeviceTree::new(), deltas);
        let selection: Vec<&str> = ["f0", "f1", "f2"]
            .iter()
            .enumerate()
            .filter(|(i, _)| (sel_mask >> i) & 1 == 1)
            .map(|(_, s)| *s)
            .collect();
        let product = line.derive(&selection).expect("derives");
        for (i, (_, feat)) in specs.iter().enumerate() {
            let active = (sel_mask >> feat) & 1 == 1;
            let present = product.tree.root.prop(&format!("p{i}")).is_some();
            prop_assert_eq!(active, present, "delta dl{}", i);
        }
    }
}

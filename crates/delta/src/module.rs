//! Delta module data model.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use llhsc_dts::Node;

/// The activation condition of a delta: a propositional formula over
/// feature names (the `when` clause of Listing 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhenExpr {
    /// Always active (no `when` clause).
    True,
    /// The named feature is selected.
    Feature(String),
    /// Negation.
    Not(Box<WhenExpr>),
    /// `&&`
    And(Box<WhenExpr>, Box<WhenExpr>),
    /// `||`
    Or(Box<WhenExpr>, Box<WhenExpr>),
}

impl WhenExpr {
    /// Evaluates the condition under a feature selection.
    pub fn eval(&self, selected: &BTreeSet<&str>) -> bool {
        match self {
            WhenExpr::True => true,
            WhenExpr::Feature(f) => selected.contains(f.as_str()),
            WhenExpr::Not(e) => !e.eval(selected),
            WhenExpr::And(a, b) => a.eval(selected) && b.eval(selected),
            WhenExpr::Or(a, b) => a.eval(selected) || b.eval(selected),
        }
    }

    /// All feature names mentioned.
    pub fn features(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        fn rec(e: &WhenExpr, out: &mut BTreeSet<String>) {
            match e {
                WhenExpr::True => {}
                WhenExpr::Feature(f) => {
                    out.insert(f.clone());
                }
                WhenExpr::Not(x) => rec(x, out),
                WhenExpr::And(a, b) | WhenExpr::Or(a, b) => {
                    rec(a, out);
                    rec(b, out);
                }
            }
        }
        rec(self, &mut out);
        out
    }
}

impl fmt::Display for WhenExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhenExpr::True => write!(f, "true"),
            WhenExpr::Feature(n) => write!(f, "{n}"),
            WhenExpr::Not(e) => write!(f, "!({e})"),
            WhenExpr::And(a, b) => write!(f, "({a} && {b})"),
            WhenExpr::Or(a, b) => write!(f, "({a} || {b})"),
        }
    }
}

/// One operation inside a delta module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// `adds binding <path> { <child nodes> }` — adds the given children
    /// (and properties) under the existing node at `path`.
    Adds {
        /// Target node path (e.g. `vEthernet`, `/`).
        path: String,
        /// The fragment whose properties and children are added.
        fragment: Node,
    },
    /// `modifies <path> { … }` — merges the fragment into the node at
    /// `path` (properties overwrite, children merge recursively).
    Modifies {
        /// Target node path.
        path: String,
        /// The patch.
        fragment: Node,
    },
    /// `removes <path>;` — deletes the node at `path`.
    RemovesNode {
        /// Node to delete.
        path: String,
    },
    /// `removes <path> property <name>;` — deletes one property.
    RemovesProperty {
        /// Node whose property is deleted.
        path: String,
        /// Property name.
        name: String,
    },
}

impl DeltaOp {
    /// The target path of this operation.
    pub fn path(&self) -> &str {
        match self {
            DeltaOp::Adds { path, .. }
            | DeltaOp::Modifies { path, .. }
            | DeltaOp::RemovesNode { path }
            | DeltaOp::RemovesProperty { path, .. } => path,
        }
    }

    /// Short verb for diagnostics.
    pub fn verb(&self) -> &'static str {
        match self {
            DeltaOp::Adds { .. } => "adds",
            DeltaOp::Modifies { .. } => "modifies",
            DeltaOp::RemovesNode { .. } => "removes",
            DeltaOp::RemovesProperty { .. } => "removes property",
        }
    }
}

/// A delta module: name, ordering constraints, activation condition and
/// operations (Listing 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaModule {
    /// Module name (`d1` … `d4`).
    pub name: String,
    /// Names of deltas that must apply before this one (`after`).
    pub after: Vec<String>,
    /// Activation condition (`when`).
    pub when: WhenExpr,
    /// Operations in source order.
    pub ops: Vec<DeltaOp>,
}

impl DeltaModule {
    /// Parses a document containing any number of delta modules (see
    /// [`parse_deltas`](crate::parse_deltas)).
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError`] on malformed input.
    pub fn parse_all(src: &str) -> Result<Vec<DeltaModule>, DeltaError> {
        crate::lang::parse_deltas(src)
    }

    /// Whether this delta activates under a feature selection.
    pub fn active(&self, selected: &BTreeSet<&str>) -> bool {
        self.when.eval(selected)
    }
}

/// Errors across the delta crate: parsing, ordering, application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta language input was malformed.
    Parse {
        /// 1-based line.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// An embedded DTS fragment failed to parse.
    Fragment {
        /// Delta being parsed.
        delta: String,
        /// The DTS error rendered.
        message: String,
    },
    /// Two deltas share a name.
    DuplicateName {
        /// The name.
        name: String,
    },
    /// The `after` relation over active deltas has a cycle.
    Cycle {
        /// Deltas on the cycle.
        involved: Vec<String>,
    },
    /// An operation targeted a path that does not exist; carries the
    /// provenance needed to trace the failure to its delta.
    MissingTarget {
        /// The delta whose operation failed.
        delta: String,
        /// The operation verb.
        op: String,
        /// The missing path.
        path: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Parse { line, message } => {
                write!(f, "delta parse error at line {line}: {message}")
            }
            DeltaError::Fragment { delta, message } => {
                write!(f, "delta {delta}: bad DTS fragment: {message}")
            }
            DeltaError::DuplicateName { name } => {
                write!(f, "duplicate delta module name {name:?}")
            }
            DeltaError::Cycle { involved } => {
                write!(f, "cycle in delta 'after' order involving {involved:?}")
            }
            DeltaError::MissingTarget { delta, op, path } => {
                write!(
                    f,
                    "delta {delta}: {op} targets missing node {path:?} \
                     (is an earlier delta missing from the configuration?)"
                )
            }
        }
    }
}

impl Error for DeltaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(names: &[&str]) -> BTreeSet<&'static str> {
        // Tests only use static strings.
        names
            .iter()
            .map(|s| -> &'static str { Box::leak(s.to_string().into_boxed_str()) })
            .collect()
    }

    #[test]
    fn when_eval() {
        let e = WhenExpr::Or(
            Box::new(WhenExpr::Feature("veth0".into())),
            Box::new(WhenExpr::Feature("veth1".into())),
        );
        assert!(e.eval(&sel(&["veth0"])));
        assert!(e.eval(&sel(&["veth1"])));
        assert!(!e.eval(&sel(&["memory"])));
        assert!(WhenExpr::True.eval(&sel(&[])));
        let n = WhenExpr::Not(Box::new(WhenExpr::Feature("x".into())));
        assert!(n.eval(&sel(&[])));
        assert!(!n.eval(&sel(&["x"])));
    }

    #[test]
    fn when_features_collected() {
        let e = WhenExpr::And(
            Box::new(WhenExpr::Feature("a".into())),
            Box::new(WhenExpr::Not(Box::new(WhenExpr::Feature("b".into())))),
        );
        let fs = e.features();
        assert!(fs.contains("a") && fs.contains("b"));
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn when_display() {
        let e = WhenExpr::Or(
            Box::new(WhenExpr::Feature("veth0".into())),
            Box::new(WhenExpr::Feature("veth1".into())),
        );
        assert_eq!(e.to_string(), "(veth0 || veth1)");
    }

    #[test]
    fn op_accessors() {
        let op = DeltaOp::RemovesProperty {
            path: "/memory".into(),
            name: "reg".into(),
        };
        assert_eq!(op.path(), "/memory");
        assert_eq!(op.verb(), "removes property");
    }

    #[test]
    fn error_display() {
        let e = DeltaError::MissingTarget {
            delta: "d1".into(),
            op: "adds".into(),
            path: "vEthernet".into(),
        };
        assert!(e.to_string().contains("d1"));
        assert!(e.to_string().contains("vEthernet"));
    }
}

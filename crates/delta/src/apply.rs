//! Activation, ordering and application of delta modules.

use std::collections::BTreeSet;

use llhsc_dts::DeviceTree;

use crate::module::{DeltaError, DeltaModule, DeltaOp};

/// Records which delta performed which operation on which node — the
/// paper's traceability requirement: "if an error is detected by the
/// checker, it can easily be traced back to the delta-module causing
/// it" (§III-B).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// The delta module.
    pub delta: String,
    /// The operation verb (`adds`, `modifies`, …).
    pub op: String,
    /// The node path the operation touched.
    pub path: String,
}

/// A derived product: the resulting tree, the application order and the
/// operation provenance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DerivedProduct {
    /// The tree after all active deltas were applied.
    pub tree: DeviceTree,
    /// Delta names in application order.
    pub order: Vec<String>,
    /// One record per applied operation, in application order.
    pub provenance: Vec<Provenance>,
}

impl DerivedProduct {
    /// A stable content hash of the product — tree, application order
    /// and provenance together. Two products with this hash in common
    /// are interchangeable for checking *and* blame reporting, which is
    /// what a per-product result cache needs as its key.
    pub fn stable_hash(&self) -> u64 {
        llhsc_dts::hash::stable_hash_of(&(&self.tree, &self.order, &self.provenance))
    }

    /// The deltas that touched `path` (exact match), most recent last.
    pub fn blame(&self, path: &str) -> Vec<&Provenance> {
        self.provenance.iter().filter(|p| p.path == path).collect()
    }

    /// The deltas that touched `path` or any ancestor of it.
    pub fn blame_subtree(&self, path: &str) -> Vec<&Provenance> {
        self.provenance
            .iter()
            .filter(|p| {
                path == p.path || path.starts_with(&format!("{}/", p.path)) || p.path == "/"
            })
            .collect()
    }
}

/// A DTS product line: a core module plus delta modules (§III-B).
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductLine {
    core: DeviceTree,
    deltas: Vec<DeltaModule>,
}

impl ProductLine {
    /// Creates a product line.
    pub fn new(core: DeviceTree, deltas: Vec<DeltaModule>) -> ProductLine {
        ProductLine { core, deltas }
    }

    /// The core module.
    pub fn core(&self) -> &DeviceTree {
        &self.core
    }

    /// The delta modules, in declaration order.
    pub fn deltas(&self) -> &[DeltaModule] {
        &self.deltas
    }

    /// The deltas activated by a feature selection, in declaration
    /// order (before `after` sorting).
    pub fn active(&self, selection: &[&str]) -> Vec<&DeltaModule> {
        let set: BTreeSet<&str> = selection.iter().copied().collect();
        self.deltas.iter().filter(|d| d.active(&set)).collect()
    }

    /// Computes the application order of the active deltas: a linear
    /// extension of the `after` partial order. Ties are broken
    /// deterministically: deltas that only refine existing structure
    /// (`modifies`/`removes`) apply before deltas that extend it
    /// (`adds`), so extensions always see the fully refined base;
    /// remaining ties follow declaration order. This reproduces the
    /// paper's printed orders d3 < d4 < d1 / d3 < d4 < d2 for the
    /// running example. `after` references to inactive deltas are
    /// ignored, per DOP semantics ("the application order is determined
    /// using the subset of active deltas").
    ///
    /// # Errors
    ///
    /// [`DeltaError::Cycle`] when the active `after` relation is cyclic.
    pub fn order(&self, selection: &[&str]) -> Result<Vec<&DeltaModule>, DeltaError> {
        let active = self.active(selection);
        let active_names: BTreeSet<&str> = active.iter().map(|d| d.name.as_str()).collect();
        let mut remaining: Vec<&DeltaModule> = active;
        let mut out: Vec<&DeltaModule> = Vec::new();
        let mut placed: BTreeSet<&str> = BTreeSet::new();
        let extends = |d: &DeltaModule| d.ops.iter().any(|op| matches!(op, DeltaOp::Adds { .. }));
        while !remaining.is_empty() {
            let ready = |d: &&DeltaModule| {
                d.after
                    .iter()
                    .all(|a| !active_names.contains(a.as_str()) || placed.contains(a.as_str()))
            };
            let ready_idx = remaining
                .iter()
                .position(|d| ready(d) && !extends(d))
                .or_else(|| remaining.iter().position(ready));
            match ready_idx {
                Some(i) => {
                    let d = remaining.remove(i);
                    placed.insert(d.name.as_str());
                    out.push(d);
                }
                None => {
                    return Err(DeltaError::Cycle {
                        involved: remaining.iter().map(|d| d.name.clone()).collect(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Derives the product for a feature selection: activates deltas,
    /// orders them and applies their operations to a copy of the core.
    ///
    /// # Errors
    ///
    /// [`DeltaError::Cycle`] for unsortable `after` relations and
    /// [`DeltaError::MissingTarget`] when an operation addresses a node
    /// that does not exist — the error names the responsible delta.
    pub fn derive(&self, selection: &[&str]) -> Result<DerivedProduct, DeltaError> {
        let ordered = self.order(selection)?;
        let mut tree = self.core.clone();
        let mut provenance = Vec::new();
        let order: Vec<String> = ordered.iter().map(|d| d.name.clone()).collect();
        for delta in ordered {
            for op in &delta.ops {
                apply_op(&mut tree, &delta.name, op)?;
                provenance.push(Provenance {
                    delta: delta.name.clone(),
                    op: op.verb().to_string(),
                    path: normalise(op.path()),
                });
            }
        }
        Ok(DerivedProduct {
            tree,
            order,
            provenance,
        })
    }
}

fn normalise(path: &str) -> String {
    if path.starts_with('/') {
        path.to_string()
    } else {
        format!("/{path}")
    }
}

fn apply_op(tree: &mut DeviceTree, delta: &str, op: &DeltaOp) -> Result<(), DeltaError> {
    let missing = |path: &str| DeltaError::MissingTarget {
        delta: delta.to_string(),
        op: op.verb().to_string(),
        path: path.to_string(),
    };
    match op {
        DeltaOp::Adds { path, fragment } => {
            let target = tree.find_mut(path).ok_or_else(|| missing(path))?;
            // `adds` introduces the fragment's children (and any
            // properties) under the target node. Re-adding an existing
            // child merges, mirroring DTS source semantics.
            target.merge(with_name(fragment, &target.name.clone()));
            Ok(())
        }
        DeltaOp::Modifies { path, fragment } => {
            let target = if path == "/" {
                Some(&mut tree.root)
            } else {
                tree.find_mut(path)
            };
            let target = target.ok_or_else(|| missing(path))?;
            target.merge(with_name(fragment, &target.name.clone()));
            Ok(())
        }
        DeltaOp::RemovesNode { path } => {
            tree.remove(path).map_err(|_| missing(path))?;
            Ok(())
        }
        DeltaOp::RemovesProperty { path, name } => {
            let target = tree.find_mut(path).ok_or_else(|| missing(path))?;
            target
                .remove_prop(name)
                .ok_or_else(|| missing(&format!("{path}#{name}")))?;
            Ok(())
        }
    }
}

/// Clones a fragment under the target's name so `Node::merge` applies.
fn with_name(fragment: &llhsc_dts::Node, name: &str) -> llhsc_dts::Node {
    let mut f = fragment.clone();
    f.name = name.to_string();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::tests::LISTING_4;
    use crate::module::DeltaModule;
    use llhsc_dts::parse;

    /// The running example core module (Listing 1).
    pub(crate) const CORE: &str = r#"
/dts-v1/;
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };
    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x0>;
        };
        cpu@1 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x1>;
        };
    };
    uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
    };
};
"#;

    fn product_line() -> ProductLine {
        ProductLine::new(
            parse(CORE).unwrap(),
            DeltaModule::parse_all(LISTING_4).unwrap(),
        )
    }

    #[test]
    fn activation_for_vm1() {
        // VM1 (Fig. 1b) selects veth0 and memory: d1, d3, d4 activate.
        let pl = product_line();
        let names: Vec<&str> = pl
            .active(&["memory", "veth0"])
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(names, vec!["d1", "d3", "d4"]);
    }

    #[test]
    fn order_for_vm1_is_d3_d4_d1() {
        // The paper (§III-B) prints the orders as d3 < d4 < d2 for the
        // first VM and d3 < d4 < d1 for the second, but its own Listing 4
        // guards d1 with `when veth0` (the first VM's feature) and d2
        // with `when veth1`; we follow the listing, so VM1 gets
        // d3 < d4 < d1. See EXPERIMENTS.md E4.
        let pl = product_line();
        let order: Vec<String> = pl
            .order(&["memory", "veth0"])
            .unwrap()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        assert_eq!(order, vec!["d3", "d4", "d1"]);
    }

    #[test]
    fn order_for_vm2_is_d3_d4_d2() {
        let pl = product_line();
        let order: Vec<String> = pl
            .order(&["memory", "veth1"])
            .unwrap()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        assert_eq!(order, vec!["d3", "d4", "d2"]);
    }

    #[test]
    fn derive_vm1_product() {
        let pl = product_line();
        let p = pl.derive(&["memory", "veth0"]).unwrap();
        // d3: root switched to 32-bit cells, vEthernet added.
        assert_eq!(p.tree.root.prop_u32("#address-cells"), Some(1));
        assert_eq!(p.tree.root.prop_u32("#size-cells"), Some(1));
        assert!(p.tree.find("/vEthernet").is_some());
        // d4: memory reg rewritten to 32-bit layout.
        let mem = p.tree.find("/memory@40000000").unwrap();
        assert_eq!(
            mem.prop("reg").unwrap().flat_cells().unwrap(),
            vec![0x4000_0000, 0x2000_0000, 0x6000_0000, 0x2000_0000]
        );
        // d1: veth0 added under vEthernet.
        let veth = p.tree.find("/vEthernet/veth0@80000000").unwrap();
        assert_eq!(veth.prop_str("compatible"), Some("veth"));
        assert_eq!(veth.prop_u32("id"), Some(0));
        // The untouched core parts survive.
        assert!(p.tree.find("/cpus/cpu@0").is_some());
        assert!(p.tree.find("/uart@20000000").is_some());
    }

    #[test]
    fn derive_vm2_product() {
        let pl = product_line();
        let p = pl.derive(&["memory", "veth1"]).unwrap();
        let veth = p.tree.find("/vEthernet/veth0@70000000").unwrap();
        assert_eq!(veth.prop_u32("id"), Some(1));
        assert!(p.tree.find("/vEthernet/veth0@80000000").is_none());
    }

    #[test]
    fn no_veth_features_leaves_core_cells() {
        let pl = product_line();
        let p = pl.derive(&["memory"]).unwrap();
        assert_eq!(p.order, vec!["d4"]);
        // d3 did not run: root cells stay 64-bit…
        assert_eq!(p.tree.root.prop_u32("#address-cells"), Some(2));
        // …but d4 still rewrote the memory reg with 32-bit-shaped data —
        // exactly the §IV-C truncation hazard the semantic checker must
        // catch.
        let mem = p.tree.find("/memory@40000000").unwrap();
        assert_eq!(mem.prop("reg").unwrap().flat_cells().unwrap().len(), 4);
    }

    #[test]
    fn provenance_blames_the_right_delta() {
        let pl = product_line();
        let p = pl.derive(&["memory", "veth0"]).unwrap();
        let blame = p.blame("/memory@40000000");
        assert_eq!(blame.len(), 1);
        assert_eq!(blame[0].delta, "d4");
        assert_eq!(blame[0].op, "modifies");
        let veth_blame = p.blame("/vEthernet");
        assert_eq!(veth_blame.len(), 1);
        assert_eq!(veth_blame[0].delta, "d1");
        let subtree = p.blame_subtree("/vEthernet/veth0@80000000");
        assert!(subtree.iter().any(|pr| pr.delta == "d1"));
        assert!(subtree.iter().any(|pr| pr.delta == "d3"));
    }

    #[test]
    fn missing_target_names_delta() {
        // d1 without d3 (manually built): adds under a node that never
        // appeared.
        let deltas = DeltaModule::parse_all(
            "delta d1 when veth0 { adds binding vEthernet { veth0@0 { }; }; }",
        )
        .unwrap();
        let pl = ProductLine::new(parse(CORE).unwrap(), deltas);
        let err = pl.derive(&["veth0"]).unwrap_err();
        match err {
            DeltaError::MissingTarget { delta, path, .. } => {
                assert_eq!(delta, "d1");
                assert_eq!(path, "vEthernet");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cycle_detected() {
        let deltas = DeltaModule::parse_all(
            "delta a after b { modifies / { }; } delta b after a { modifies / { }; }",
        )
        .unwrap();
        let pl = ProductLine::new(parse(CORE).unwrap(), deltas);
        let err = pl.derive(&[]).unwrap_err();
        match err {
            DeltaError::Cycle { involved } => {
                assert_eq!(involved.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn after_to_inactive_delta_is_ignored() {
        let deltas = DeltaModule::parse_all(
            "delta late after ghost when x { modifies / { marker = <1>; }; } \
             delta ghost when never_selected { modifies / { }; }",
        )
        .unwrap();
        let pl = ProductLine::new(parse(CORE).unwrap(), deltas);
        let p = pl.derive(&["x"]).unwrap();
        assert_eq!(p.order, vec!["late"]);
        assert_eq!(p.tree.root.prop_u32("marker"), Some(1));
    }

    #[test]
    fn removes_ops_apply() {
        let deltas = DeltaModule::parse_all(
            "delta strip { removes /uart@20000000; removes memory@40000000 property reg; }",
        )
        .unwrap();
        let pl = ProductLine::new(parse(CORE).unwrap(), deltas);
        let p = pl.derive(&[]).unwrap();
        assert!(p.tree.find("/uart@20000000").is_none());
        assert!(p
            .tree
            .find("/memory@40000000")
            .unwrap()
            .prop("reg")
            .is_none());
    }

    #[test]
    fn deterministic_order_among_unconstrained() {
        let deltas =
            DeltaModule::parse_all("delta z { modifies / { }; } delta a { modifies / { }; }")
                .unwrap();
        let pl = ProductLine::new(parse(CORE).unwrap(), deltas);
        // Declaration order, not alphabetical.
        assert_eq!(pl.derive(&[]).unwrap().order, vec!["z", "a"]);
    }
}

//! Delta-oriented programming (DOP) for DeviceTree product lines —
//! §III-B of the llhsc paper.
//!
//! A product line of DTS files consists of a *core module* (the running
//! example's DTS) and a set of *delta modules* that add, modify or
//! remove fragments. Each delta carries
//!
//! * a `when` clause — a propositional formula over feature names that
//!   activates the delta for a given feature configuration, and
//! * `after` clauses — a strict partial order constraining application
//!   order among active deltas.
//!
//! This crate provides the delta language parser (the concrete syntax of
//! the paper's Listing 4), activation and deterministic topological
//! ordering, the application engine, and per-node *provenance* so that a
//! checker error "can easily be traced back to the delta-module causing
//! it" (§III-B).
//!
//! # Example
//!
//! ```
//! use llhsc_delta::{DeltaModule, ProductLine};
//!
//! let core = llhsc_dts::parse("/ { memory@40000000 { }; };").unwrap();
//! let deltas = DeltaModule::parse_all(r#"
//! delta d3 when (veth0 || veth1) {
//!     modifies / {
//!         #address-cells = <1>;
//!         #size-cells = <1>;
//!         vEthernet { };
//!     };
//! }
//! delta d1 after d3 when veth0 {
//!     adds binding vEthernet {
//!         veth0@80000000 { compatible = "veth"; };
//!     };
//! }
//! "#).unwrap();
//! let pl = ProductLine::new(core, deltas);
//! let product = pl.derive(&["memory", "veth0"]).unwrap();
//! assert_eq!(product.order, vec!["d3", "d1"]);
//! assert!(product.tree.find("/vEthernet/veth0@80000000").is_some());
//! ```

mod apply;
mod lang;
mod module;

pub use apply::{DerivedProduct, ProductLine, Provenance};
pub use lang::parse_deltas;
pub use module::{DeltaError, DeltaModule, DeltaOp, WhenExpr};

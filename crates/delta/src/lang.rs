//! Parser for the delta language of the paper's Listing 4.
//!
//! ```text
//! delta d1 after d3 when veth0 {
//!     adds binding vEthernet {
//!         veth0@80000000 {
//!             compatible = "veth";
//!             reg = <0x80000000 0x10000000>;
//!             id = <0>;
//!         };
//!     };
//! }
//! ```
//!
//! The node bodies inside `adds`/`modifies` are plain DTS syntax; they
//! are delegated to the [`llhsc_dts`] parser by wrapping the raw block
//! in a synthetic root node.

use crate::module::{DeltaError, DeltaModule, DeltaOp, WhenExpr};

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b',' | b'.' | b'_' | b'+' | b'-' | b'@' | b'#')
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Scanner<'a> {
        Scanner {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> DeltaError {
        DeltaError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    self.bump();
                    self.bump();
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_trivia();
        self.peek().is_none()
    }

    /// Reads an identifier usable in node paths (may contain commas,
    /// e.g. vendor prefixes).
    fn ident(&mut self) -> Result<String, DeltaError> {
        self.skip_trivia();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_name_char(c) {
                self.bump();
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err(format!(
                "expected a name, found {:?}",
                self.peek().map(|c| c as char)
            )));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .to_string())
    }

    /// Reads a keyword, delta name or feature name (no commas — those
    /// separate `after` list entries).
    fn word(&mut self) -> Result<String, DeltaError> {
        self.skip_trivia();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_name_char(c) && c != b',' {
                self.bump();
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err(format!(
                "expected a name, found {:?}",
                self.peek().map(|c| c as char)
            )));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .to_string())
    }

    /// Reads a node path: `/` alone, or `/`-separated names.
    fn path(&mut self) -> Result<String, DeltaError> {
        self.skip_trivia();
        let mut out = String::new();
        if self.peek() == Some(b'/') {
            self.bump();
            out.push('/');
        }
        loop {
            self.skip_trivia();
            match self.peek() {
                Some(c) if is_name_char(c) => {
                    let seg = self.ident()?;
                    if !out.is_empty() && !out.ends_with('/') {
                        out.push('/');
                    }
                    out.push_str(&seg);
                    self.skip_trivia();
                    if self.peek() == Some(b'/') {
                        self.bump();
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        if out.is_empty() {
            return Err(self.err("expected a node path"));
        }
        Ok(out)
    }

    fn expect(&mut self, c: u8) -> Result<(), DeltaError> {
        self.skip_trivia();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {:?}, found {:?}",
                c as char,
                self.peek().map(|x| x as char)
            )))
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_trivia();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Captures the raw text of a `{ … }` block (brace returned
    /// exclusive), tracking strings so braces in string literals do not
    /// confuse the balance.
    fn raw_block(&mut self) -> Result<String, DeltaError> {
        self.expect(b'{')?;
        let start = self.pos;
        let mut depth = 1usize;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated '{' block")),
                Some(b'"') => {
                    // Skip string literal.
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated string")),
                            Some(b'\\') => {
                                self.bump();
                            }
                            Some(b'"') => break,
                            _ => {}
                        }
                    }
                }
                Some(b'{') => depth += 1,
                Some(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        let text = std::str::from_utf8(&self.src[start..self.pos - 1])
                            .expect("ascii")
                            .to_string();
                        return Ok(text);
                    }
                }
                _ => {}
            }
        }
    }

    // when-expression grammar: or := and ('||' and)*, and := unary
    // ('&&' unary)*, unary := '!' unary | '(' or ')' | feature.
    fn when_expr(&mut self) -> Result<WhenExpr, DeltaError> {
        let mut left = self.when_and()?;
        loop {
            self.skip_trivia();
            if self.peek() == Some(b'|') && self.src.get(self.pos + 1) == Some(&b'|') {
                self.bump();
                self.bump();
                let right = self.when_and()?;
                left = WhenExpr::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn when_and(&mut self) -> Result<WhenExpr, DeltaError> {
        let mut left = self.when_unary()?;
        loop {
            self.skip_trivia();
            if self.peek() == Some(b'&') && self.src.get(self.pos + 1) == Some(&b'&') {
                self.bump();
                self.bump();
                let right = self.when_unary()?;
                left = WhenExpr::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn when_unary(&mut self) -> Result<WhenExpr, DeltaError> {
        self.skip_trivia();
        match self.peek() {
            Some(b'!') => {
                self.bump();
                Ok(WhenExpr::Not(Box::new(self.when_unary()?)))
            }
            Some(b'(') => {
                self.bump();
                let inner = self.when_expr()?;
                self.expect(b')')?;
                Ok(inner)
            }
            Some(c) if is_name_char(c) => {
                let name = self.word()?;
                match name.as_str() {
                    "true" => Ok(WhenExpr::True),
                    "false" => Ok(WhenExpr::Not(Box::new(WhenExpr::True))),
                    _ => Ok(WhenExpr::Feature(name)),
                }
            }
            other => Err(self.err(format!(
                "expected a when-expression, found {:?}",
                other.map(|c| c as char)
            ))),
        }
    }
}

/// Parses a DTS fragment (the body of an `adds`/`modifies` block) by
/// wrapping it in a synthetic root.
fn parse_fragment(delta: &str, body: &str) -> Result<llhsc_dts::Node, DeltaError> {
    let wrapped = format!("/ {{ {body} }};");
    let tree = llhsc_dts::parse(&wrapped).map_err(|e| DeltaError::Fragment {
        delta: delta.to_string(),
        message: e.to_string(),
    })?;
    Ok(tree.root)
}

/// Parses a document containing delta modules (Listing 4 syntax).
///
/// # Errors
///
/// Returns [`DeltaError::Parse`] / [`DeltaError::Fragment`] on bad
/// input, and [`DeltaError::DuplicateName`] when two deltas share a
/// name.
pub fn parse_deltas(src: &str) -> Result<Vec<DeltaModule>, DeltaError> {
    let mut s = Scanner::new(src);
    let mut out: Vec<DeltaModule> = Vec::new();
    while !s.at_end() {
        let kw = s.word()?;
        if kw != "delta" {
            return Err(s.err(format!("expected 'delta', found {kw:?}")));
        }
        let name = s.word()?;
        if out.iter().any(|d| d.name == name) {
            return Err(DeltaError::DuplicateName { name });
        }
        let mut after = Vec::new();
        let mut when = WhenExpr::True;
        loop {
            s.skip_trivia();
            if s.peek() == Some(b'{') {
                break;
            }
            let kw = s.word()?;
            match kw.as_str() {
                "after" => loop {
                    after.push(s.word()?);
                    if !s.eat(b',') {
                        break;
                    }
                },
                "when" => {
                    when = s.when_expr()?;
                }
                other => {
                    return Err(s.err(format!("expected 'after', 'when' or '{{', found {other:?}")))
                }
            }
        }
        s.expect(b'{')?;
        let mut ops = Vec::new();
        loop {
            s.skip_trivia();
            if s.eat(b'}') {
                break;
            }
            let verb = s.word()?;
            match verb.as_str() {
                "adds" => {
                    s.skip_trivia();
                    // Optional 'binding' keyword (Listing 4 flavour).
                    if s.peek().map(is_name_char).unwrap_or(false) {
                        let save = (s.pos, s.line);
                        let maybe = s.word()?;
                        if maybe != "binding" {
                            (s.pos, s.line) = save;
                        }
                    }
                    let path = s.path()?;
                    let body = s.raw_block()?;
                    let fragment = parse_fragment(&name, &body)?;
                    ops.push(DeltaOp::Adds { path, fragment });
                    s.eat(b';');
                }
                "modifies" => {
                    let path = s.path()?;
                    let body = s.raw_block()?;
                    let fragment = parse_fragment(&name, &body)?;
                    ops.push(DeltaOp::Modifies { path, fragment });
                    s.eat(b';');
                }
                "removes" => {
                    let path = s.path()?;
                    s.skip_trivia();
                    let save = (s.pos, s.line);
                    let maybe = if s.peek().map(is_name_char).unwrap_or(false) {
                        s.word()?
                    } else {
                        String::new()
                    };
                    if maybe == "property" {
                        let prop = s.ident()?;
                        ops.push(DeltaOp::RemovesProperty { path, name: prop });
                    } else {
                        (s.pos, s.line) = save;
                        ops.push(DeltaOp::RemovesNode { path });
                    }
                    s.expect(b';')?;
                }
                other => {
                    return Err(s.err(format!(
                        "expected 'adds', 'modifies' or 'removes', found {other:?}"
                    )))
                }
            }
        }
        out.push(DeltaModule {
            name,
            after,
            when,
            ops,
        });
    }
    Ok(out)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The paper's Listing 4, verbatim structure (with the vEthernet
    /// cell sizes made explicit so child `reg` values parse under the
    /// intended 1+1 layout — see EXPERIMENTS.md E4).
    pub(crate) const LISTING_4: &str = r#"
delta d1 after d3 when veth0 {
    adds binding vEthernet {
        veth0@80000000 {
            compatible = "veth";
            reg = <0x80000000 0x10000000>;
            id = <0>;
        };
    };
}

delta d2 after d3 when veth1 {
    adds binding vEthernet {
        veth0@70000000 {
            compatible = "veth";
            reg = <0x70000000 0x10000000>;
            id = <1>;
        };
    };
}

delta d3 when (veth0 || veth1) {
    modifies / {
        #address-cells = <1>;
        #size-cells = <1>;
        vEthernet {
            #address-cells = <1>;
            #size-cells = <1>;
        };
    };
}

delta d4 after d3 when memory {
    modifies memory@40000000 {
        reg = <0x40000000 0x20000000
               0x60000000 0x20000000>;
    };
}
"#;

    #[test]
    fn parses_listing4() {
        let ds = parse_deltas(LISTING_4).unwrap();
        assert_eq!(ds.len(), 4);
        let names: Vec<&str> = ds.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["d1", "d2", "d3", "d4"]);
        assert_eq!(ds[0].after, vec!["d3"]);
        assert_eq!(ds[0].when, WhenExpr::Feature("veth0".into()));
        assert_eq!(
            ds[2].when,
            WhenExpr::Or(
                Box::new(WhenExpr::Feature("veth0".into())),
                Box::new(WhenExpr::Feature("veth1".into()))
            )
        );
        assert_eq!(ds[3].after, vec!["d3"]);
        // d1's op adds under vEthernet.
        match &ds[0].ops[0] {
            DeltaOp::Adds { path, fragment } => {
                assert_eq!(path, "vEthernet");
                assert_eq!(fragment.children.len(), 1);
                assert_eq!(fragment.children[0].name, "veth0@80000000");
                assert_eq!(fragment.children[0].prop_u32("id"), Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // d3 modifies the root.
        match &ds[2].ops[0] {
            DeltaOp::Modifies { path, fragment } => {
                assert_eq!(path, "/");
                assert_eq!(fragment.prop_u32("#address-cells"), Some(1));
                assert!(fragment.children.iter().any(|c| c.name == "vEthernet"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adds_without_binding_keyword() {
        let ds = parse_deltas("delta d after x { adds /soc { timer { }; }; }").unwrap();
        assert_eq!(ds[0].after, vec!["x"]);
        match &ds[0].ops[0] {
            DeltaOp::Adds { path, fragment } => {
                assert_eq!(path, "/soc");
                assert_eq!(fragment.children[0].name, "timer");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn removes_variants() {
        let ds =
            parse_deltas("delta d { removes /uart@0; removes memory@0 property reg; }").unwrap();
        assert_eq!(
            ds[0].ops,
            vec![
                DeltaOp::RemovesNode {
                    path: "/uart@0".into()
                },
                DeltaOp::RemovesProperty {
                    path: "memory@0".into(),
                    name: "reg".into()
                },
            ]
        );
    }

    #[test]
    fn when_operators() {
        let ds = parse_deltas("delta d when (a && !b) || c { modifies / { x = <1>; }; }").unwrap();
        let sel_a: std::collections::BTreeSet<&str> = ["a"].into_iter().collect();
        let sel_ab: std::collections::BTreeSet<&str> = ["a", "b"].into_iter().collect();
        let sel_c: std::collections::BTreeSet<&str> = ["c"].into_iter().collect();
        assert!(ds[0].when.eval(&sel_a));
        assert!(!ds[0].when.eval(&sel_ab));
        assert!(ds[0].when.eval(&sel_c));
    }

    #[test]
    fn multiple_after() {
        let ds = parse_deltas("delta d after a, b, c { modifies / { }; }").unwrap();
        assert_eq!(ds[0].after, vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = parse_deltas("delta d { } delta d { }");
        assert!(matches!(r, Err(DeltaError::DuplicateName { .. })));
    }

    #[test]
    fn bad_fragment_reported_with_delta_name() {
        let r = parse_deltas("delta broken { modifies / { reg = <huh>; }; }");
        match r {
            Err(DeltaError::Fragment { delta, .. }) => assert_eq!(delta, "broken"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_lines() {
        let r = parse_deltas("delta d {\n  frobs / { };\n}");
        match r {
            Err(DeltaError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_allowed() {
        let ds = parse_deltas(
            "// leading\ndelta d /* inline */ when x {\n  // op comment\n  modifies / { };\n}",
        )
        .unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn empty_document() {
        assert!(parse_deltas("").unwrap().is_empty());
        assert!(parse_deltas("  // nothing\n").unwrap().is_empty());
    }

    #[test]
    fn strings_with_braces_in_fragment() {
        let ds = parse_deltas("delta d { modifies / { model = \"weird{}brace\"; }; }").unwrap();
        match &ds[0].ops[0] {
            DeltaOp::Modifies { fragment, .. } => {
                assert_eq!(fragment.prop_str("model"), Some("weird{}brace"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! The feature-model data structure and its propositional encoding.

use std::collections::HashMap;
use std::fmt;

use llhsc_smt::{Context, TermId};

/// Handle to a feature inside a [`FeatureModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureId(pub(crate) u32);

impl FeatureId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a feature's children decompose (the edge decorations of §II-B,
/// extended with cardinality groups per Czarnecki-style notations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GroupKind {
    /// Children are independent; each is mandatory or optional on its
    /// own.
    #[default]
    And,
    /// If the parent is selected, at least one child must be.
    Or,
    /// If the parent is selected, exactly one child must be.
    Xor,
    /// If the parent is selected, between `min` and `max` children must
    /// be (inclusive). `Or` is `Card{1, n}`, `Xor` is `Card{1, 1}`.
    Card {
        /// Minimum selected children.
        min: u32,
        /// Maximum selected children.
        max: u32,
    },
}

/// One feature node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Feature {
    /// Human-readable feature name (unique within the model).
    pub name: String,
    /// Optional features may be deselected even when the parent is
    /// selected (only meaningful under an [`GroupKind::And`] parent).
    pub optional: bool,
    /// Abstract features structure the model but map to no artifact
    /// (paper: `uarts`, `vEthernet`).
    pub is_abstract: bool,
    /// Decomposition of this feature's children.
    pub group: GroupKind,
    /// In a multi-product model, children of this group are exclusive
    /// resources: at most one VM may select each child (§IV-A).
    pub cross_vm_exclusive: bool,
    /// Parent feature; `None` for the root.
    pub parent: Option<FeatureId>,
    /// Children in insertion order.
    pub children: Vec<FeatureId>,
}

/// A propositional formula over features, for cross-tree constraints
/// beyond simple requires/excludes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The feature is selected.
    Feat(FeatureId),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional.
    Iff(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Sugar for `Implies(Feat(a), Feat(b))`.
    pub fn requires(a: FeatureId, b: FeatureId) -> Formula {
        Formula::Implies(Box::new(Formula::Feat(a)), Box::new(Formula::Feat(b)))
    }

    /// Sugar for `¬(a ∧ b)`.
    pub fn excludes(a: FeatureId, b: FeatureId) -> Formula {
        Formula::Not(Box::new(Formula::And(vec![
            Formula::Feat(a),
            Formula::Feat(b),
        ])))
    }
}

/// A cross-hierarchy composition rule (§II-B).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CrossConstraint {
    /// Selecting `.0` requires selecting `.1`.
    Requires(FeatureId, FeatureId),
    /// `.0` and `.1` are mutually exclusive.
    Excludes(FeatureId, FeatureId),
    /// An arbitrary propositional rule.
    Rule(Formula),
}

/// A feature model: a feature tree plus cross-tree constraints.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureModel {
    features: Vec<Feature>,
    names: HashMap<String, FeatureId>,
    constraints: Vec<CrossConstraint>,
}

impl std::hash::Hash for FeatureModel {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // `names` is an index derived from `features`; hashing it would
        // be redundant and HashMap iteration order is unstable anyway.
        self.features.hash(state);
        self.constraints.hash(state);
    }
}

/// 64-bit FNV-1a with a fixed seed — the same stable hasher as
/// `llhsc_dts::hash::Fnv1a`, duplicated privately because feature
/// models deliberately do not depend on the DeviceTree crate.
struct Fnv1a(u64);

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl FeatureModel {
    /// A stable content hash of the model (features and constraints):
    /// deterministic across processes, so it can serve as part of a
    /// content-addressed cache key for allocation results.
    pub fn stable_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
        self.hash(&mut h);
        h.finish()
    }
}

impl FeatureModel {
    /// Creates a model containing only the root feature.
    pub fn new(root_name: &str) -> FeatureModel {
        let root = Feature {
            name: root_name.to_string(),
            optional: false,
            is_abstract: true,
            group: GroupKind::And,
            cross_vm_exclusive: false,
            parent: None,
            children: Vec::new(),
        };
        let mut names = HashMap::new();
        names.insert(root_name.to_string(), FeatureId(0));
        FeatureModel {
            features: vec![root],
            names,
            constraints: Vec::new(),
        }
    }

    /// The root feature.
    pub fn root(&self) -> FeatureId {
        FeatureId(0)
    }

    /// Number of features (including the root).
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if the model has only a root.
    pub fn is_empty(&self) -> bool {
        self.features.len() <= 1
    }

    fn add_feature(&mut self, parent: FeatureId, name: &str, optional: bool) -> FeatureId {
        assert!(
            !self.names.contains_key(name),
            "duplicate feature name {name:?}"
        );
        let id = FeatureId(self.features.len() as u32);
        self.features.push(Feature {
            name: name.to_string(),
            optional,
            is_abstract: false,
            group: GroupKind::And,
            cross_vm_exclusive: false,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.features[parent.index()].children.push(id);
        self.names.insert(name.to_string(), id);
        id
    }

    /// Adds a mandatory child feature.
    ///
    /// # Panics
    ///
    /// Panics on duplicate feature names (they identify features in
    /// products and diagnostics).
    pub fn add_mandatory(&mut self, parent: FeatureId, name: &str) -> FeatureId {
        self.add_feature(parent, name, false)
    }

    /// Adds an optional child feature.
    pub fn add_optional(&mut self, parent: FeatureId, name: &str) -> FeatureId {
        self.add_feature(parent, name, true)
    }

    /// Sets how `feature`'s children decompose.
    pub fn set_group(&mut self, feature: FeatureId, group: GroupKind) {
        self.features[feature.index()].group = group;
    }

    /// Marks a feature abstract (no artifact mapping).
    pub fn set_abstract(&mut self, feature: FeatureId, is_abstract: bool) {
        self.features[feature.index()].is_abstract = is_abstract;
    }

    /// Marks `feature`'s children as exclusive resources across VMs in a
    /// multi-product model (§IV-A).
    pub fn set_cross_vm_exclusive(&mut self, feature: FeatureId, exclusive: bool) {
        self.features[feature.index()].cross_vm_exclusive = exclusive;
    }

    /// Adds a `requires` cross-tree constraint.
    pub fn requires(&mut self, from: FeatureId, to: FeatureId) {
        self.constraints.push(CrossConstraint::Requires(from, to));
    }

    /// Adds an `excludes` cross-tree constraint.
    pub fn excludes(&mut self, a: FeatureId, b: FeatureId) {
        self.constraints.push(CrossConstraint::Excludes(a, b));
    }

    /// Adds an arbitrary propositional cross-tree rule.
    pub fn add_rule(&mut self, rule: Formula) {
        self.constraints.push(CrossConstraint::Rule(rule));
    }

    /// Looks a feature up by name.
    pub fn by_name(&self, name: &str) -> Option<FeatureId> {
        self.names.get(name).copied()
    }

    /// The feature's data.
    pub fn feature(&self, id: FeatureId) -> &Feature {
        &self.features[id.index()]
    }

    /// The feature's name.
    pub fn name(&self, id: FeatureId) -> &str {
        &self.features[id.index()].name
    }

    /// All feature ids, root first.
    pub fn ids(&self) -> impl Iterator<Item = FeatureId> + '_ {
        (0..self.features.len() as u32).map(FeatureId)
    }

    /// All concrete (non-abstract) feature ids.
    pub fn concrete_ids(&self) -> impl Iterator<Item = FeatureId> + '_ {
        self.ids().filter(|&id| !self.feature(id).is_abstract)
    }

    /// The cross-tree constraints.
    pub fn constraints(&self) -> &[CrossConstraint] {
        &self.constraints
    }

    /// Like [`FeatureModel::encode`], but guards every model rule with
    /// a fresh marker assumption and returns `(vars, markers)`, where
    /// each marker carries a human-readable description of its rule.
    /// Checking with all markers assumed and peeling unsat cores
    /// explains *why* a model is void — which is how
    /// [`Analyzer::explain_void`](crate::Analyzer::explain_void) works.
    pub fn encode_with_markers(
        &self,
        ctx: &mut Context,
    ) -> (HashMap<FeatureId, TermId>, Vec<(TermId, String)>) {
        let vars: HashMap<FeatureId, TermId> = self
            .ids()
            .map(|id| (id, ctx.bool_var(self.name(id))))
            .collect();
        let mut markers: Vec<(TermId, String)> = Vec::new();
        let guard = |ctx: &mut Context,
                     markers: &mut Vec<(TermId, String)>,
                     rule: TermId,
                     description: String| {
            let m = ctx.bool_var(&format!("fm-rule#{}", markers.len()));
            let guarded = ctx.implies(m, rule);
            ctx.assert(guarded);
            markers.push((m, description));
        };

        for id in self.ids() {
            let f = self.feature(id);
            let fv = vars[&id];
            if let Some(p) = f.parent {
                let imp = ctx.implies(fv, vars[&p]);
                guard(
                    ctx,
                    &mut markers,
                    imp,
                    format!("{} requires its parent {}", f.name, self.name(p)),
                );
            }
            if f.children.is_empty() {
                continue;
            }
            let child_vars: Vec<TermId> = f.children.iter().map(|c| vars[c]).collect();
            match f.group {
                GroupKind::And => {
                    for (ci, &cv) in f.children.iter().zip(&child_vars) {
                        if !self.feature(*ci).optional {
                            let iff = ctx.iff(cv, fv);
                            guard(
                                ctx,
                                &mut markers,
                                iff,
                                format!("{} is mandatory under {}", self.name(*ci), f.name),
                            );
                        }
                    }
                }
                GroupKind::Or => {
                    let any = ctx.or(child_vars.clone());
                    let imp = ctx.implies(fv, any);
                    guard(
                        ctx,
                        &mut markers,
                        imp,
                        format!("{} needs at least one child (or-group)", f.name),
                    );
                }
                GroupKind::Xor => {
                    let any = ctx.or(child_vars.clone());
                    let one = ctx.at_most(child_vars.clone(), 1);
                    let imp = ctx.implies(fv, any);
                    let rule = ctx.and([imp, one]);
                    guard(
                        ctx,
                        &mut markers,
                        rule,
                        format!("{} needs exactly one child (xor-group)", f.name),
                    );
                }
                GroupKind::Card { min, max } => {
                    let lo = ctx.at_least(child_vars.clone(), min as usize);
                    let hi = ctx.at_most(child_vars.clone(), max as usize);
                    let window = ctx.and([lo, hi]);
                    let rule = ctx.implies(fv, window);
                    guard(
                        ctx,
                        &mut markers,
                        rule,
                        format!("{} needs {min}..{max} children (cardinality)", f.name),
                    );
                }
            }
        }
        for c in &self.constraints {
            let (term, description) = match c {
                CrossConstraint::Requires(a, b) => (
                    ctx.implies(vars[a], vars[b]),
                    format!("{} requires {}", self.name(*a), self.name(*b)),
                ),
                CrossConstraint::Excludes(a, b) => {
                    let both = ctx.and([vars[a], vars[b]]);
                    (
                        ctx.not(both),
                        format!("{} excludes {}", self.name(*a), self.name(*b)),
                    )
                }
                CrossConstraint::Rule(f) => (
                    self.encode_formula(ctx, f, &vars),
                    "cross-tree rule".to_string(),
                ),
            };
            guard(ctx, &mut markers, term, description);
        }
        (vars, markers)
    }

    /// Encodes the model into an SMT context using Batory's rules,
    /// prefixing every variable name with `prefix` (used by
    /// [`MultiModel`](crate::MultiModel) to instantiate per-VM copies).
    /// Returns the feature → term mapping. The root is *not* asserted
    /// true here; callers decide (a product of the model always contains
    /// the root, a VM slot in a multi-model may be empty).
    pub fn encode(&self, ctx: &mut Context, prefix: &str) -> HashMap<FeatureId, TermId> {
        let vars: HashMap<FeatureId, TermId> = self
            .ids()
            .map(|id| {
                let v = ctx.bool_var(&format!("{prefix}{}", self.name(id)));
                (id, v)
            })
            .collect();

        for id in self.ids() {
            let f = self.feature(id);
            let fv = vars[&id];
            // child => parent
            if let Some(p) = f.parent {
                let imp = ctx.implies(fv, vars[&p]);
                ctx.assert(imp);
            }
            if f.children.is_empty() {
                continue;
            }
            let child_vars: Vec<TermId> = f.children.iter().map(|c| vars[c]).collect();
            match f.group {
                GroupKind::And => {
                    for (ci, &cv) in f.children.iter().zip(&child_vars) {
                        if !self.feature(*ci).optional {
                            // mandatory child <=> parent
                            let iff = ctx.iff(cv, fv);
                            ctx.assert(iff);
                        }
                    }
                }
                GroupKind::Or => {
                    let any = ctx.or(child_vars.clone());
                    let imp = ctx.implies(fv, any);
                    ctx.assert(imp);
                }
                GroupKind::Xor => {
                    let any = ctx.or(child_vars.clone());
                    let imp = ctx.implies(fv, any);
                    ctx.assert(imp);
                    for i in 0..child_vars.len() {
                        for j in (i + 1)..child_vars.len() {
                            let both = ctx.and([child_vars[i], child_vars[j]]);
                            let neither = ctx.not(both);
                            ctx.assert(neither);
                        }
                    }
                }
                GroupKind::Card { min, max } => {
                    let lo = ctx.at_least(child_vars.clone(), min as usize);
                    let hi = ctx.at_most(child_vars.clone(), max as usize);
                    let window = ctx.and([lo, hi]);
                    let imp = ctx.implies(fv, window);
                    ctx.assert(imp);
                }
            }
        }

        for c in &self.constraints {
            let term = match c {
                CrossConstraint::Requires(a, b) => ctx.implies(vars[a], vars[b]),
                CrossConstraint::Excludes(a, b) => {
                    let both = ctx.and([vars[a], vars[b]]);
                    ctx.not(both)
                }
                CrossConstraint::Rule(f) => self.encode_formula(ctx, f, &vars),
            };
            ctx.assert(term);
        }
        vars
    }

    fn encode_formula(
        &self,
        ctx: &mut Context,
        f: &Formula,
        vars: &HashMap<FeatureId, TermId>,
    ) -> TermId {
        match f {
            Formula::Feat(id) => vars[id],
            Formula::Not(inner) => {
                let t = self.encode_formula(ctx, inner, vars);
                ctx.not(t)
            }
            Formula::And(parts) => {
                let ts: Vec<TermId> = parts
                    .iter()
                    .map(|p| self.encode_formula(ctx, p, vars))
                    .collect();
                ctx.and(ts)
            }
            Formula::Or(parts) => {
                let ts: Vec<TermId> = parts
                    .iter()
                    .map(|p| self.encode_formula(ctx, p, vars))
                    .collect();
                ctx.or(ts)
            }
            Formula::Implies(a, b) => {
                let (ta, tb) = (
                    self.encode_formula(ctx, a, vars),
                    self.encode_formula(ctx, b, vars),
                );
                ctx.implies(ta, tb)
            }
            Formula::Iff(a, b) => {
                let (ta, tb) = (
                    self.encode_formula(ctx, a, vars),
                    self.encode_formula(ctx, b, vars),
                );
                ctx.iff(ta, tb)
            }
        }
    }
}

impl fmt::Display for FeatureModel {
    /// Renders the tree with FODA-ish decorations, one feature per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            fm: &FeatureModel,
            id: FeatureId,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let feat = fm.feature(id);
            for _ in 0..depth {
                write!(f, "  ")?;
            }
            let opt = if feat.optional { "?" } else { "" };
            let abs = if feat.is_abstract { " (abstract)" } else { "" };
            let grp = match feat.group {
                GroupKind::And => String::new(),
                GroupKind::Or => " [or]".to_string(),
                GroupKind::Xor => " [xor]".to_string(),
                GroupKind::Card { min, max } => format!(" [{min}..{max}]"),
            };
            let grp = grp.as_str();
            let excl = if feat.cross_vm_exclusive {
                " [exclusive]"
            } else {
                ""
            };
            writeln!(f, "{}{opt}{abs}{grp}{excl}", feat.name)?;
            for &c in &feat.children {
                rec(fm, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, self.root(), 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhsc_smt::CheckResult;

    #[test]
    fn build_structure() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_mandatory(r, "a");
        let b = fm.add_optional(r, "b");
        assert_eq!(fm.len(), 3);
        assert_eq!(fm.by_name("a"), Some(a));
        assert_eq!(fm.feature(b).parent, Some(r));
        assert!(!fm.feature(a).optional);
        assert!(fm.feature(b).optional);
        assert_eq!(fm.feature(r).children, vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "duplicate feature name")]
    fn duplicate_names_panic() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        fm.add_mandatory(r, "a");
        fm.add_mandatory(r, "a");
    }

    #[test]
    fn encode_mandatory_propagates() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_mandatory(r, "a");
        let mut ctx = Context::new();
        let vars = fm.encode(&mut ctx, "");
        ctx.assert(vars[&r]);
        assert_eq!(ctx.check(), CheckResult::Sat);
        assert_eq!(ctx.model().unwrap().eval_bool(vars[&a]), Some(true));
    }

    #[test]
    fn encode_xor_exactly_one() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let g = fm.add_mandatory(r, "g");
        fm.set_group(g, GroupKind::Xor);
        let x = fm.add_optional(g, "x");
        let y = fm.add_optional(g, "y");
        let mut ctx = Context::new();
        let vars = fm.encode(&mut ctx, "");
        ctx.assert(vars[&r]);
        // Selecting both children is impossible.
        ctx.push();
        ctx.assert(vars[&x]);
        ctx.assert(vars[&y]);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
        // Selecting neither is impossible (g mandatory).
        ctx.push();
        let nx = ctx.not(vars[&x]);
        let ny = ctx.not(vars[&y]);
        ctx.assert(nx);
        ctx.assert(ny);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
    }

    #[test]
    fn encode_or_at_least_one() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let g = fm.add_mandatory(r, "g");
        fm.set_group(g, GroupKind::Or);
        let x = fm.add_optional(g, "x");
        let y = fm.add_optional(g, "y");
        let mut ctx = Context::new();
        let vars = fm.encode(&mut ctx, "");
        ctx.assert(vars[&r]);
        // Both selected is fine under OR.
        ctx.push();
        ctx.assert(vars[&x]);
        ctx.assert(vars[&y]);
        assert_eq!(ctx.check(), CheckResult::Sat);
        ctx.pop();
        // Neither is not.
        let nx = ctx.not(vars[&x]);
        let ny = ctx.not(vars[&y]);
        ctx.assert(nx);
        ctx.assert(ny);
        assert_eq!(ctx.check(), CheckResult::Unsat);
    }

    #[test]
    fn child_requires_parent() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let p = fm.add_optional(r, "p");
        let c = fm.add_optional(p, "c");
        let mut ctx = Context::new();
        let vars = fm.encode(&mut ctx, "");
        ctx.assert(vars[&r]);
        ctx.assert(vars[&c]);
        let np = ctx.not(vars[&p]);
        ctx.assert(np);
        assert_eq!(ctx.check(), CheckResult::Unsat);
    }

    #[test]
    fn cross_constraints_apply() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_optional(r, "a");
        let b = fm.add_optional(r, "b");
        let c = fm.add_optional(r, "c");
        fm.requires(a, b);
        fm.excludes(b, c);
        let mut ctx = Context::new();
        let vars = fm.encode(&mut ctx, "");
        ctx.assert(vars[&r]);
        ctx.push();
        ctx.assert(vars[&a]);
        let nb = ctx.not(vars[&b]);
        ctx.assert(nb);
        assert_eq!(ctx.check(), CheckResult::Unsat);
        ctx.pop();
        ctx.assert(vars[&b]);
        ctx.assert(vars[&c]);
        assert_eq!(ctx.check(), CheckResult::Unsat);
    }

    #[test]
    fn formula_rules() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_optional(r, "a");
        let b = fm.add_optional(r, "b");
        // a <-> not b
        fm.add_rule(Formula::Iff(
            Box::new(Formula::Feat(a)),
            Box::new(Formula::Not(Box::new(Formula::Feat(b)))),
        ));
        let mut ctx = Context::new();
        let vars = fm.encode(&mut ctx, "");
        ctx.assert(vars[&r]);
        ctx.assert(vars[&a]);
        ctx.assert(vars[&b]);
        assert_eq!(ctx.check(), CheckResult::Unsat);
    }

    #[test]
    fn display_tree() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let g = fm.add_mandatory(r, "cpus");
        fm.set_group(g, GroupKind::Xor);
        fm.set_cross_vm_exclusive(g, true);
        fm.add_optional(g, "cpu@0");
        let s = fm.to_string();
        assert!(s.contains("Root (abstract)"));
        assert!(s.contains("cpus [xor] [exclusive]"));
        assert!(s.contains("cpu@0?"));
    }

    #[test]
    fn prefixed_encodings_are_independent() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_optional(r, "a");
        let mut ctx = Context::new();
        let v1 = fm.encode(&mut ctx, "vm1:");
        let v2 = fm.encode(&mut ctx, "vm2:");
        ctx.assert(v1[&r]);
        ctx.assert(v2[&r]);
        ctx.assert(v1[&a]);
        let n2 = ctx.not(v2[&a]);
        ctx.assert(n2);
        assert_eq!(ctx.check(), CheckResult::Sat);
    }
}

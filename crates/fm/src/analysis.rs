//! Automated analyses over a single feature model (§II-B).

use std::collections::{BTreeSet, HashMap};

use llhsc_count::{approx_count, count_exact, ApproxParams};
use llhsc_sat::{Cnf, Lit};
use llhsc_smt::{CheckResult, Context, TermId};

use crate::model::{FeatureId, FeatureModel};

/// A product: the set of selected features (always contains the root).
pub type Product = BTreeSet<FeatureId>;

/// Outcome of a [budgeted product count](Analyzer::count_products_budgeted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductCount {
    /// Number of valid products (exact, or an (ε, δ) estimate when
    /// `approximate` is set and `exact` is not).
    pub models: u64,
    /// True when `models` is the exact count.
    pub exact: bool,
    /// True when the enumeration budget was exceeded and the count
    /// came from XOR-hash estimation instead.
    pub approximate: bool,
}

/// SAT-backed analyser for one feature model.
///
/// Owns an incremental [`Context`] holding the model's propositional
/// encoding with the root asserted; individual queries run in push/pop
/// scopes, mirroring how the paper adds constraints "incrementally to
/// the same solver instance".
#[derive(Debug)]
pub struct Analyzer {
    model: FeatureModel,
    ctx: Context,
    vars: HashMap<FeatureId, TermId>,
    ordered: Vec<FeatureId>,
}

impl Analyzer {
    /// Builds the analyser (encodes the model once).
    pub fn new(model: &FeatureModel) -> Analyzer {
        let mut ctx = Context::new();
        let vars = model.encode(&mut ctx, "");
        let root = vars[&model.root()];
        ctx.assert(root);
        let ordered: Vec<FeatureId> = model.ids().collect();
        Analyzer {
            model: model.clone(),
            ctx,
            vars,
            ordered,
        }
    }

    /// The model under analysis.
    pub fn model(&self) -> &FeatureModel {
        &self.model
    }

    /// A model is *void* if it admits no product at all.
    pub fn is_void(&mut self) -> bool {
        self.ctx.check() == CheckResult::Unsat
    }

    fn selection_assumptions(&mut self, selected: &[FeatureId]) -> Vec<TermId> {
        let set: BTreeSet<FeatureId> = selected.iter().copied().collect();
        self.ordered
            .iter()
            .map(|id| {
                let v = self.vars[id];
                if set.contains(id) {
                    v
                } else {
                    self.ctx.not(v)
                }
            })
            .collect()
    }

    /// Checks whether an exact selection (features listed are selected,
    /// all others deselected) is a valid product.
    pub fn is_valid(&mut self, selected: &[FeatureId]) -> bool {
        let assumptions = self.selection_assumptions(selected);
        self.ctx.check_assuming(&assumptions) == CheckResult::Sat
    }

    /// Explains why a selection is invalid: returns the names of the
    /// selection decisions in the unsat core (prefixed with `!` for
    /// "deselected"), or an empty vector if the selection is valid.
    pub fn explain_invalid(&mut self, selected: &[FeatureId]) -> Vec<String> {
        let assumptions = self.selection_assumptions(selected);
        if self.ctx.check_assuming(&assumptions) == CheckResult::Sat {
            return Vec::new();
        }
        let set: BTreeSet<FeatureId> = selected.iter().copied().collect();
        let core: Vec<TermId> = self.ctx.unsat_core().to_vec();
        let mut out = Vec::new();
        for (i, id) in self.ordered.iter().enumerate() {
            if core.contains(&assumptions[i]) {
                let name = self.model.name(*id);
                if set.contains(id) {
                    out.push(name.to_string());
                } else {
                    out.push(format!("!{name}"));
                }
            }
        }
        out
    }

    /// Completes a partial selection into a full product, if possible
    /// (the paper's "automatic assignment" of grayed-out features).
    ///
    /// The completion is *greedily minimal*: beyond the requested
    /// features, only features forced by the model's constraints are
    /// selected — optional extras stay deselected.
    pub fn complete(&mut self, selected: &[FeatureId]) -> Option<Product> {
        let mut assumptions: Vec<TermId> = selected.iter().map(|id| self.vars[id]).collect();
        if self.ctx.check_assuming(&assumptions) != CheckResult::Sat {
            return None;
        }
        // Greedy minimisation: try to switch off every feature that was
        // not explicitly requested; keep the negation when satisfiable.
        let requested: BTreeSet<FeatureId> = selected.iter().copied().collect();
        for id in self.ordered.clone() {
            if requested.contains(&id) {
                continue;
            }
            let neg = self.ctx.not(self.vars[&id]);
            let mut attempt = assumptions.clone();
            attempt.push(neg);
            if self.ctx.check_assuming(&attempt) == CheckResult::Sat {
                assumptions = attempt;
            }
        }
        // Final model under the minimised assumptions.
        if self.ctx.check_assuming(&assumptions) != CheckResult::Sat {
            return None; // unreachable: last attempt was satisfiable
        }
        let m = self.ctx.model().expect("model after sat");
        let mut product = Product::new();
        for id in &self.ordered {
            if m.eval_bool(self.vars[id]) == Some(true) {
                product.insert(*id);
            }
        }
        Some(product)
    }

    /// Counts the valid products of the model.
    ///
    /// Routed through the bounded All-SAT path
    /// ([`Analyzer::count_products_budgeted`]) with a generous default
    /// budget, so the count benefits from component decomposition and
    /// degrades to an approximation instead of hanging on astronomically
    /// large spaces. Callers that care about exactness flags should call
    /// the budgeted method directly.
    pub fn count_products(&mut self) -> usize {
        self.count_products_budgeted(1 << 20).models as usize
    }

    /// Counts valid products by walking the incremental solver's model
    /// space directly, with no budget and no decomposition.
    #[deprecated(note = "duplicated the All-SAT enumeration; use `count_products` \
                or `count_products_budgeted`")]
    pub fn count_products_unbudgeted(&mut self) -> usize {
        let over: Vec<TermId> = self.ordered.iter().map(|id| self.vars[id]).collect();
        self.ctx.count_models(&over)
    }

    /// Exports the model's propositional encoding (with the root
    /// asserted) as a CNF plus the product projection: one positive
    /// literal per feature, in [`FeatureModel::ids`] order.
    ///
    /// The export re-encodes the model into a fresh clause-logged
    /// [`Context`], so the analyser's own incremental solver stays
    /// untouched and pays no logging overhead on the hot query paths.
    pub fn export_cnf(&self) -> (Cnf, Vec<Lit>) {
        let mut ctx = Context::with_clause_log();
        let vars = self.model.encode(&mut ctx, "");
        ctx.assert(vars[&self.model.root()]);
        let over: Vec<TermId> = self.ordered.iter().map(|id| vars[id]).collect();
        ctx.export_cnf(&over, &[])
            .expect("context was created with clause logging enabled")
    }

    /// Counts valid products with an explicit enumeration budget.
    ///
    /// Up to `budget` models are enumerated exactly (with component
    /// decomposition, so the effective budget applies per independent
    /// sub-model). When the space is larger, the count falls back to
    /// XOR-hash approximate counting under the default (ε, δ) and the
    /// result is flagged `approximate` — this is how family-level
    /// counts stay tractable where naive enumeration would not.
    pub fn count_products_budgeted(&mut self, budget: u64) -> ProductCount {
        let (cnf, proj) = self.export_cnf();
        let exact = count_exact(&cnf, &proj, budget);
        if exact.exact {
            return ProductCount {
                models: exact.models,
                exact: true,
                approximate: false,
            };
        }
        let est = approx_count(&cnf, &proj, &ApproxParams::default(), None);
        ProductCount {
            models: est.estimate,
            exact: est.exact,
            approximate: true,
        }
    }

    /// Enumerates all valid products.
    pub fn products(&mut self) -> Vec<Product> {
        let over: Vec<TermId> = self.ordered.iter().map(|id| self.vars[id]).collect();
        self.ctx
            .all_models(&over, None)
            .into_iter()
            .map(|values| {
                self.ordered
                    .iter()
                    .zip(values)
                    .filter(|(_, v)| *v)
                    .map(|(id, _)| *id)
                    .collect()
            })
            .collect()
    }

    /// *Dead* features appear in no product (§II-B's example analysis).
    pub fn dead_features(&mut self) -> Vec<FeatureId> {
        let mut dead = Vec::new();
        for id in self.ordered.clone() {
            let v = self.vars[&id];
            if self.ctx.check_assuming(&[v]) == CheckResult::Unsat {
                dead.push(id);
            }
        }
        dead
    }

    /// *Core* features appear in every product.
    pub fn core_features(&mut self) -> Vec<FeatureId> {
        let mut core = Vec::new();
        for id in self.ordered.clone() {
            let nv = self.ctx.not(self.vars[&id]);
            if self.ctx.check_assuming(&[nv]) == CheckResult::Unsat {
                core.push(id);
            }
        }
        core
    }

    /// Renders a product as sorted feature names (diagnostics, tests).
    pub fn product_names(&self, product: &Product) -> Vec<String> {
        product
            .iter()
            .map(|id| self.model.name(*id).to_string())
            .collect()
    }

    /// Explains why the model is void: a set of model rules that are
    /// jointly unsatisfiable together with the root (from iterated
    /// unsat cores over a marker-guarded encoding). Empty when the
    /// model is not void.
    pub fn explain_void(&mut self) -> Vec<String> {
        if !self.is_void() {
            return Vec::new();
        }
        let mut ctx = llhsc_smt::Context::new();
        let (vars, markers) = self.model.encode_with_markers(&mut ctx);
        ctx.assert(vars[&self.model.root()]);
        let assumptions: Vec<TermId> = markers.iter().map(|(m, _)| *m).collect();
        if ctx.check_assuming(&assumptions) == CheckResult::Sat {
            return vec!["(inconsistency not attributable to a rule subset)".to_string()];
        }
        let core: std::collections::BTreeSet<TermId> = ctx.unsat_core().iter().copied().collect();
        markers
            .into_iter()
            .filter(|(m, _)| core.contains(m))
            .map(|(_, d)| d)
            .collect()
    }

    /// *False-optional* features: modelled as optional but present in
    /// every product (their optionality is an illusion created by
    /// constraints) — a standard feature-model anomaly alongside dead
    /// features.
    pub fn false_optional(&mut self) -> Vec<FeatureId> {
        let core: std::collections::BTreeSet<FeatureId> =
            self.core_features().into_iter().collect();
        self.ordered
            .iter()
            .copied()
            .filter(|id| self.model.feature(*id).optional && core.contains(id))
            .collect()
    }

    /// The *commonality* of a feature: the fraction of valid products
    /// that contain it (1.0 for core features, 0.0 for dead ones) — a
    /// standard product-line metric over the §II-B analyses.
    ///
    /// Returns `None` for a void model (no products to take a fraction
    /// of).
    pub fn commonality(&mut self, feature: FeatureId) -> Option<f64> {
        let products = self.products();
        if products.is_empty() {
            return None;
        }
        let containing = products.iter().filter(|p| p.contains(&feature)).count();
        Some(containing as f64 / products.len() as f64)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::model::GroupKind;

    /// The paper's Fig. 1a feature model. `uarts` is an abstract OR
    /// group over the two serial ports (physically present on the SBC),
    /// `vEthernet` an abstract optional XOR group over the two virtual
    /// Ethernet devices, with the paper's cross constraints
    /// `veth0 ⇒ cpu@0` and `veth1 ⇒ cpu@1`. This model has exactly the
    /// 12 valid products the paper reports.
    pub(crate) fn custom_sbc() -> FeatureModel {
        let mut fm = FeatureModel::new("CustomSBC");
        let root = fm.root();
        let _memory = fm.add_mandatory(root, "memory");
        let cpus = fm.add_mandatory(root, "cpus");
        fm.set_group(cpus, GroupKind::Xor);
        fm.set_cross_vm_exclusive(cpus, true);
        let cpu0 = fm.add_optional(cpus, "cpu@0");
        let cpu1 = fm.add_optional(cpus, "cpu@1");
        let uarts = fm.add_mandatory(root, "uarts");
        fm.set_abstract(uarts, true);
        fm.set_group(uarts, GroupKind::Or);
        fm.add_optional(uarts, "uart@20000000");
        fm.add_optional(uarts, "uart@30000000");
        let veth = fm.add_optional(root, "vEthernet");
        fm.set_abstract(veth, true);
        fm.set_group(veth, GroupKind::Xor);
        let veth0 = fm.add_optional(veth, "veth0");
        let veth1 = fm.add_optional(veth, "veth1");
        fm.requires(veth0, cpu0);
        fm.requires(veth1, cpu1);
        fm
    }

    #[test]
    fn custom_sbc_is_not_void() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        assert!(!an.is_void());
    }

    #[test]
    fn custom_sbc_has_12_products() {
        // The paper: "In this feature model there are 12 valid products".
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        assert_eq!(an.count_products(), 12);
    }

    #[test]
    fn fig1b_product_is_valid() {
        // Fig. 1b: cpu@0, both uarts, veth0.
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let sel: Vec<FeatureId> = [
            "CustomSBC",
            "memory",
            "cpus",
            "cpu@0",
            "uarts",
            "uart@20000000",
            "uart@30000000",
            "vEthernet",
            "veth0",
        ]
        .iter()
        .map(|n| fm.by_name(n).unwrap())
        .collect();
        assert!(an.is_valid(&sel));
    }

    #[test]
    fn fig1c_product_is_valid() {
        // Fig. 1c: cpu@1, both uarts, veth1.
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let sel: Vec<FeatureId> = [
            "CustomSBC",
            "memory",
            "cpus",
            "cpu@1",
            "uarts",
            "uart@20000000",
            "uart@30000000",
            "vEthernet",
            "veth1",
        ]
        .iter()
        .map(|n| fm.by_name(n).unwrap())
        .collect();
        assert!(an.is_valid(&sel));
    }

    #[test]
    fn wrong_veth_cpu_pairing_invalid() {
        // veth0 with cpu@1 violates veth0 ⇒ cpu@0.
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let sel: Vec<FeatureId> = [
            "CustomSBC",
            "memory",
            "cpus",
            "cpu@1",
            "uarts",
            "uart@20000000",
            "vEthernet",
            "veth0",
        ]
        .iter()
        .map(|n| fm.by_name(n).unwrap())
        .collect();
        assert!(!an.is_valid(&sel));
        let why = an.explain_invalid(&sel);
        assert!(!why.is_empty());
        // The explanation mentions the conflicting decisions.
        assert!(
            why.iter()
                .any(|n| n.contains("veth0") || n.contains("cpu@0")),
            "unhelpful core: {why:?}"
        );
    }

    #[test]
    fn both_cpus_invalid() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let sel: Vec<FeatureId> = [
            "CustomSBC",
            "memory",
            "cpus",
            "cpu@0",
            "cpu@1",
            "uarts",
            "uart@20000000",
        ]
        .iter()
        .map(|n| fm.by_name(n).unwrap())
        .collect();
        assert!(!an.is_valid(&sel));
    }

    #[test]
    fn missing_mandatory_memory_invalid() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let sel: Vec<FeatureId> = ["CustomSBC", "cpus", "cpu@0", "uarts", "uart@20000000"]
            .iter()
            .map(|n| fm.by_name(n).unwrap())
            .collect();
        assert!(!an.is_valid(&sel));
        let why = an.explain_invalid(&sel);
        assert!(why.iter().any(|n| n.contains("memory")), "{why:?}");
    }

    #[test]
    fn budgeted_count_matches_enumeration() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let c = an.count_products_budgeted(1 << 20);
        assert!(c.exact);
        assert!(!c.approximate);
        assert_eq!(c.models, 12);
        // The exported CNF agrees with the incremental context.
        assert_eq!(an.count_products(), 12);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_unbudgeted_walk_agrees_with_budgeted_count() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        // Cross-check that retiring the redundant walk changed the
        // route, not the answer: the old direct model-space walk and
        // the budgeted All-SAT path must agree exactly.
        assert_eq!(an.count_products_unbudgeted(), 12);
        assert_eq!(an.count_products(), 12);
        assert_eq!(an.products().len(), 12);
    }

    #[test]
    fn budgeted_count_falls_back_to_approximation() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        // A budget of 1 cannot hold 12 products, so the count switches
        // to the XOR-hash estimator; 12 models sit below the pivot, so
        // the estimate itself is still exact.
        let c = an.count_products_budgeted(1);
        assert!(c.approximate);
        assert!(c.exact);
        assert_eq!(c.models, 12);
    }

    #[test]
    fn budgeted_count_of_void_model_is_zero() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_mandatory(r, "a");
        let b = fm.add_mandatory(r, "b");
        fm.excludes(a, b);
        let mut an = Analyzer::new(&fm);
        let c = an.count_products_budgeted(16);
        assert!(c.exact);
        assert_eq!(c.models, 0);
    }

    #[test]
    fn exported_cnf_projection_covers_every_feature() {
        let fm = custom_sbc();
        let an = Analyzer::new(&fm);
        let (_, proj) = an.export_cnf();
        assert_eq!(proj.len(), fm.ids().count());
    }

    #[test]
    fn products_match_count_and_are_valid() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let products = an.products();
        assert_eq!(products.len(), 12);
        // Each enumerated product validates individually.
        for p in &products {
            let sel: Vec<FeatureId> = p.iter().copied().collect();
            assert!(an.is_valid(&sel), "{:?}", an.product_names(p));
        }
        // All products are distinct.
        let set: BTreeSet<_> = products.iter().cloned().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn no_dead_features_in_custom_sbc() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        assert!(an.dead_features().is_empty());
    }

    #[test]
    fn core_features_are_root_memory_cpus_uarts() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let core: BTreeSet<String> = an
            .core_features()
            .into_iter()
            .map(|id| fm.name(id).to_string())
            .collect();
        let expected: BTreeSet<String> = ["CustomSBC", "memory", "cpus", "uarts"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(core, expected);
    }

    #[test]
    fn dead_feature_detected() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_optional(r, "a");
        let b = fm.add_optional(r, "b");
        fm.requires(a, b);
        fm.excludes(a, b); // a can never be selected
        let mut an = Analyzer::new(&fm);
        assert_eq!(an.dead_features(), vec![a]);
        assert!(!an.is_void());
    }

    #[test]
    fn void_model_detected() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_mandatory(r, "a");
        let b = fm.add_mandatory(r, "b");
        fm.excludes(a, b);
        let mut an = Analyzer::new(&fm);
        assert!(an.is_void());
        assert_eq!(an.count_products(), 0);
    }

    #[test]
    fn complete_partial_selection() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let veth0 = fm.by_name("veth0").unwrap();
        let p = an.complete(&[veth0]).expect("completable");
        // The completion must auto-select cpu@0 (the paper's automatic
        // assignment of grayed-out CPU features).
        assert!(p.contains(&fm.by_name("cpu@0").unwrap()));
        assert!(!p.contains(&fm.by_name("cpu@1").unwrap()));
    }

    #[test]
    fn commonality_values() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        // Core features have commonality 1.
        let memory = fm.by_name("memory").unwrap();
        assert_eq!(an.commonality(memory), Some(1.0));
        // Each CPU appears in exactly half of the 12 products.
        let cpu0 = fm.by_name("cpu@0").unwrap();
        assert_eq!(an.commonality(cpu0), Some(0.5));
        // veth0 appears in 3 of 12 products: cpu@0 fixed, the three
        // non-empty uart subsets, vEthernet selected with veth0.
        let veth0 = fm.by_name("veth0").unwrap();
        let c = an.commonality(veth0).unwrap();
        assert!((c - 3.0 / 12.0).abs() < 1e-9, "got {c}");
    }

    #[test]
    fn explain_void_names_the_conflicting_rules() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_mandatory(r, "a");
        let b = fm.add_mandatory(r, "b");
        fm.excludes(a, b);
        let c = fm.add_optional(r, "c");
        let _ = c;
        let mut an = Analyzer::new(&fm);
        let why = an.explain_void();
        assert!(!why.is_empty());
        let text = why.join("; ");
        assert!(text.contains("a excludes b"), "{text}");
        assert!(
            text.contains("mandatory"),
            "mandatory rules are part of the conflict: {text}"
        );
        // The optional feature plays no role in the conflict.
        assert!(!why.iter().any(|w| w.starts_with("c ")), "{text}");
    }

    #[test]
    fn explain_void_empty_for_satisfiable_model() {
        let mut an = Analyzer::new(&custom_sbc());
        assert!(an.explain_void().is_empty());
    }

    #[test]
    fn false_optional_detected() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_mandatory(r, "a");
        let b = fm.add_optional(r, "b"); // drawn optional…
        fm.requires(a, b); // …but the mandatory a drags it in always
        let c = fm.add_optional(r, "c"); // genuinely optional
        let mut an = Analyzer::new(&fm);
        assert_eq!(an.false_optional(), vec![b]);
        assert!(!an.false_optional().contains(&c));
        // The running example has none.
        let mut an = Analyzer::new(&custom_sbc());
        assert!(an.false_optional().is_empty());
    }

    #[test]
    fn commonality_of_void_model_is_none() {
        let mut fm = FeatureModel::new("Root");
        let r = fm.root();
        let a = fm.add_mandatory(r, "a");
        let b = fm.add_mandatory(r, "b");
        fm.excludes(a, b);
        let mut an = Analyzer::new(&fm);
        assert_eq!(an.commonality(a), None);
    }

    #[test]
    fn complete_impossible_selection() {
        let fm = custom_sbc();
        let mut an = Analyzer::new(&fm);
        let v0 = fm.by_name("veth0").unwrap();
        let c1 = fm.by_name("cpu@1").unwrap();
        assert!(an.complete(&[v0, c1]).is_none());
    }
}

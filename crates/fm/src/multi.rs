//! Multi-product feature models for static partitioning (§IV-A).
//!
//! One hypervisor configuration with `k` VMs needs `k + 1` feature
//! models: every VM instantiates the same base model, and the platform
//! model is derived as the union of the VM selections. Static
//! partitioning adds the paper's exclusive-resource constraint
//!
//! ```text
//! (f₁¹ ∨ … ∨ fₙᵐ ⇔ f) ∧ ⋀ᵢ<ⱼ ¬(fᵢᵏ ∧ fⱼᵏ) ∧ ⋀ᵏ<ˡ ¬(fᵢᵏ ∧ fᵢˡ)
//! ```
//!
//! for every XOR group marked
//! [`cross_vm_exclusive`](crate::FeatureModel::set_cross_vm_exclusive):
//! within a VM the children stay alternatives (the middle conjunct, from
//! the base XOR encoding), and across VMs the same child may be selected
//! at most once (the right conjunct). The left biconditional is realised
//! by the platform-union definition.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use llhsc_smt::{CheckResult, Context, TermId};

use crate::analysis::Product;
use crate::model::{FeatureId, FeatureModel};

/// A satisfying resource allocation: one product per VM plus the derived
/// platform product (the union).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Product selected by each VM, in VM order.
    pub vms: Vec<Product>,
    /// The platform product (union of the VM products).
    pub platform: Product,
}

/// Why an allocation query failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// The requested selections are jointly unsatisfiable; the payload
    /// is the conflicting decisions (`vmK:feature` / `vmK:!feature`).
    Unsatisfiable(Vec<String>),
    /// A selection list was supplied for a VM index that does not exist.
    WrongVmCount {
        /// VMs in the model.
        expected: usize,
        /// Selection lists supplied.
        got: usize,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::Unsatisfiable(core) => {
                write!(f, "allocation is unsatisfiable; conflicting decisions: ")?;
                for (i, c) in core.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            AllocationError::WrongVmCount { expected, got } => {
                write!(f, "expected selections for {expected} VMs, got {got}")
            }
        }
    }
}

impl Error for AllocationError {}

/// The `k + 1` model system: `k` VM copies of a base feature model plus
/// the derived platform model, with exclusive-resource constraints.
///
/// ```
/// use llhsc_fm::{FeatureModel, GroupKind, MultiModel};
///
/// let mut fm = FeatureModel::new("SBC");
/// let root = fm.root();
/// let cpus = fm.add_mandatory(root, "cpus");
/// fm.set_group(cpus, GroupKind::Xor);
/// fm.set_cross_vm_exclusive(cpus, true);
/// fm.add_optional(cpus, "cpu@0");
/// fm.add_optional(cpus, "cpu@1");
/// // Two VMs fit (one CPU each); three cannot.
/// assert!(MultiModel::new(&fm, 2).check());
/// assert!(!MultiModel::new(&fm, 3).check());
/// ```
#[derive(Debug)]
pub struct MultiModel {
    model: FeatureModel,
    num_vms: usize,
    ctx: Context,
    vm_vars: Vec<HashMap<FeatureId, TermId>>,
    platform_vars: HashMap<FeatureId, TermId>,
    ordered: Vec<FeatureId>,
}

impl MultiModel {
    /// Instantiates the base model for `num_vms` VMs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vms` is zero.
    pub fn new(model: &FeatureModel, num_vms: usize) -> MultiModel {
        assert!(
            num_vms > 0,
            "a hypervisor configuration needs at least one VM"
        );
        let mut ctx = Context::new();
        let mut vm_vars = Vec::with_capacity(num_vms);
        for k in 0..num_vms {
            let vars = model.encode(&mut ctx, &format!("vm{}:", k + 1));
            // Every VM is a complete product of the model.
            ctx.assert(vars[&model.root()]);
            vm_vars.push(vars);
        }

        // Platform model: union of the VM selections.
        let mut platform_vars = HashMap::new();
        for id in model.ids() {
            let p = ctx.bool_var(&format!("platform:{}", model.name(id)));
            let any_parts: Vec<TermId> = vm_vars.iter().map(|v| v[&id]).collect();
            let any = ctx.or(any_parts);
            let def = ctx.iff(p, any);
            ctx.assert(def);
            platform_vars.insert(id, p);
        }

        // Exclusive resources: a child of a marked group belongs to at
        // most one VM.
        for id in model.ids() {
            let f = model.feature(id);
            if !f.cross_vm_exclusive {
                continue;
            }
            for &child in &f.children {
                for k in 0..num_vms {
                    for l in (k + 1)..num_vms {
                        let both = ctx.and([vm_vars[k][&child], vm_vars[l][&child]]);
                        let not_both = ctx.not(both);
                        ctx.assert(not_both);
                    }
                }
            }
        }

        MultiModel {
            model: model.clone(),
            num_vms,
            ctx,
            vm_vars,
            platform_vars,
            ordered: model.ids().collect(),
        }
    }

    /// The number of VMs.
    pub fn num_vms(&self) -> usize {
        self.num_vms
    }

    /// Forwards a trace context to the underlying SMT context: every
    /// solver call made by [`validate`](MultiModel::validate),
    /// [`complete`](MultiModel::complete) (including its greedy
    /// minimisation loop) and [`count_allocations`](MultiModel::count_allocations)
    /// then records a `"solve"` span with its counter delta.
    pub fn attach_trace(&mut self, trace: llhsc_obs::TraceCtx) {
        self.ctx.set_trace(trace);
    }

    /// Solver counters accumulated by this model's SMT context.
    pub fn solver_stats(&self) -> llhsc_sat::SolverStats {
        self.ctx.solver_stats()
    }

    /// Whether any allocation exists at all.
    pub fn check(&mut self) -> bool {
        self.ctx.check() == CheckResult::Sat
    }

    /// The largest VM count `1..=limit` for which the model still admits
    /// an allocation, or `None` if even one VM is impossible.
    ///
    /// Rather than bit-blasting a fresh `m`-VM model per probe, this
    /// grows a single context monotonically: step `m` adds only VM
    /// `m`'s encoding plus its exclusivity constraints against the
    /// earlier VMs, so the solver keeps its clause database (and learnt
    /// clauses) across probes. The platform-union definitions of
    /// [`MultiModel::new`] are omitted — they define fresh variables by
    /// equivalence and never affect satisfiability.
    pub fn max_vms(model: &FeatureModel, limit: usize) -> Option<usize> {
        let mut ctx = Context::new();
        let mut vm_vars: Vec<HashMap<FeatureId, TermId>> = Vec::new();
        let mut best = None;
        for m in 1..=limit {
            let vars = model.encode(&mut ctx, &format!("vm{m}:"));
            ctx.assert(vars[&model.root()]);
            for id in model.ids() {
                let f = model.feature(id);
                if !f.cross_vm_exclusive {
                    continue;
                }
                for &child in &f.children {
                    for prev in &vm_vars {
                        let both = ctx.and([prev[&child], vars[&child]]);
                        let not_both = ctx.not(both);
                        ctx.assert(not_both);
                    }
                }
            }
            vm_vars.push(vars);
            if ctx.check() == CheckResult::Sat {
                best = Some(m);
            } else {
                break;
            }
        }
        best
    }

    fn exact_assumptions(&mut self, selections: &[Vec<FeatureId>]) -> Vec<TermId> {
        let mut assumptions = Vec::new();
        for (k, sel) in selections.iter().enumerate() {
            let set: std::collections::BTreeSet<FeatureId> = sel.iter().copied().collect();
            for id in &self.ordered {
                let v = self.vm_vars[k][id];
                if set.contains(id) {
                    assumptions.push(v);
                } else {
                    assumptions.push(self.ctx.not(v));
                }
            }
        }
        assumptions
    }

    /// Validates one exact selection per VM (jointly, under the
    /// exclusive-resource constraints).
    ///
    /// # Errors
    ///
    /// [`AllocationError::WrongVmCount`] if `selections.len()` differs
    /// from the VM count; [`AllocationError::Unsatisfiable`] with the
    /// conflicting decisions otherwise.
    pub fn validate(
        &mut self,
        selections: &[Vec<FeatureId>],
    ) -> Result<Partitioning, AllocationError> {
        if selections.len() != self.num_vms {
            return Err(AllocationError::WrongVmCount {
                expected: self.num_vms,
                got: selections.len(),
            });
        }
        let assumptions = self.exact_assumptions(selections);
        match self.ctx.check_assuming(&assumptions) {
            CheckResult::Sat => Ok(self.extract_partitioning()),
            CheckResult::Unsat => {
                let core = self.ctx.unsat_core().to_vec();
                Err(AllocationError::Unsatisfiable(
                    self.describe_core(&core, selections),
                ))
            }
        }
    }

    /// Completes partial per-VM selections into a full allocation (the
    /// automatic CPU assignment of §IV-A), or reports the conflict.
    ///
    /// The completion is *greedily minimal*: beyond the requested
    /// features, each VM only receives features the constraints force
    /// on it (e.g. the CPU its veth requires) — optional extras stay
    /// deselected.
    ///
    /// # Errors
    ///
    /// Same as [`MultiModel::validate`].
    pub fn complete(
        &mut self,
        partial: &[Vec<FeatureId>],
    ) -> Result<Partitioning, AllocationError> {
        if partial.len() != self.num_vms {
            return Err(AllocationError::WrongVmCount {
                expected: self.num_vms,
                got: partial.len(),
            });
        }
        let mut assumptions = Vec::new();
        for (k, sel) in partial.iter().enumerate() {
            for id in sel {
                assumptions.push(self.vm_vars[k][id]);
            }
        }
        match self.ctx.check_assuming(&assumptions) {
            CheckResult::Sat => {}
            CheckResult::Unsat => {
                let core = self.ctx.unsat_core().to_vec();
                return Err(AllocationError::Unsatisfiable(
                    self.describe_core(&core, partial),
                ));
            }
        }
        // Greedy minimisation: deselect everything not requested or
        // forced, per VM, in deterministic order.
        for (k, requested_list) in partial.iter().enumerate() {
            let requested: std::collections::BTreeSet<FeatureId> =
                requested_list.iter().copied().collect();
            for id in self.ordered.clone() {
                if requested.contains(&id) {
                    continue;
                }
                let neg = self.ctx.not(self.vm_vars[k][&id]);
                let mut attempt = assumptions.clone();
                attempt.push(neg);
                if self.ctx.check_assuming(&attempt) == CheckResult::Sat {
                    assumptions = attempt;
                }
            }
        }
        match self.ctx.check_assuming(&assumptions) {
            CheckResult::Sat => Ok(self.extract_partitioning()),
            CheckResult::Unsat => unreachable!("minimised assumptions were satisfiable"),
        }
    }

    /// Counts the distinct allocations (projected on all VM variables).
    pub fn count_allocations(&mut self) -> usize {
        let over: Vec<TermId> = self
            .vm_vars
            .iter()
            .flat_map(|vars| self.ordered.iter().map(|id| vars[id]))
            .collect();
        self.ctx.count_models(&over)
    }

    fn extract_partitioning(&self) -> Partitioning {
        let m = self.ctx.model().expect("called after Sat");
        let mut vms = Vec::with_capacity(self.num_vms);
        for vars in &self.vm_vars {
            let mut p = Product::new();
            for id in &self.ordered {
                if m.eval_bool(vars[id]) == Some(true) {
                    p.insert(*id);
                }
            }
            vms.push(p);
        }
        let mut platform = Product::new();
        for id in &self.ordered {
            if m.eval_bool(self.platform_vars[id]) == Some(true) {
                platform.insert(*id);
            }
        }
        Partitioning { vms, platform }
    }

    fn describe_core(&self, core: &[TermId], selections: &[Vec<FeatureId>]) -> Vec<String> {
        let mut out = Vec::new();
        for (k, vars) in self.vm_vars.iter().enumerate() {
            let chosen: std::collections::BTreeSet<FeatureId> = selections
                .get(k)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            for id in &self.ordered {
                let v = vars[id];
                if core.contains(&v) {
                    out.push(format!("vm{}:{}", k + 1, self.model.name(*id)));
                } else {
                    // Negated assumptions appear as Not(v); match by the
                    // original decision.
                    let _ = &chosen;
                }
            }
        }
        if out.is_empty() {
            // Fall back to displaying raw core terms.
            for t in core {
                out.push(self.ctx.display(*t));
            }
        }
        out
    }

    /// Names of the features in a product (sorted).
    pub fn product_names(&self, product: &Product) -> Vec<String> {
        product
            .iter()
            .map(|id| self.model.name(*id).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::tests::custom_sbc;
    use crate::model::GroupKind;

    fn names_of(fm: &FeatureModel, names: &[&str]) -> Vec<FeatureId> {
        names.iter().map(|n| fm.by_name(n).unwrap()).collect()
    }

    #[test]
    fn two_vms_allocate() {
        let fm = custom_sbc();
        let mut mm = MultiModel::new(&fm, 2);
        assert!(mm.check());
    }

    #[test]
    fn fig1b_and_fig1c_together_valid() {
        let fm = custom_sbc();
        let mut mm = MultiModel::new(&fm, 2);
        let vm1 = names_of(
            &fm,
            &[
                "CustomSBC",
                "memory",
                "cpus",
                "cpu@0",
                "uarts",
                "uart@20000000",
                "uart@30000000",
                "vEthernet",
                "veth0",
            ],
        );
        let vm2 = names_of(
            &fm,
            &[
                "CustomSBC",
                "memory",
                "cpus",
                "cpu@1",
                "uarts",
                "uart@20000000",
                "uart@30000000",
                "vEthernet",
                "veth1",
            ],
        );
        let part = mm.validate(&[vm1, vm2]).expect("valid partitioning");
        // Platform is the union: contains both CPUs and both veths.
        let platform_names = mm.product_names(&part.platform);
        assert!(platform_names.contains(&"cpu@0".to_string()));
        assert!(platform_names.contains(&"cpu@1".to_string()));
        assert!(platform_names.contains(&"veth0".to_string()));
        assert!(platform_names.contains(&"veth1".to_string()));
    }

    #[test]
    fn same_cpu_in_two_vms_rejected() {
        // "in static-partitioning it is unreasonable to allocate the
        // same CPU to different VMs" (§IV-A).
        let fm = custom_sbc();
        let mut mm = MultiModel::new(&fm, 2);
        let vm = names_of(
            &fm,
            &[
                "CustomSBC",
                "memory",
                "cpus",
                "cpu@0",
                "uarts",
                "uart@20000000",
            ],
        );
        let err = mm.validate(&[vm.clone(), vm]).unwrap_err();
        match err {
            AllocationError::Unsatisfiable(core) => {
                assert!(
                    core.iter().any(|c| c.contains("cpu@0")),
                    "core should mention the doubly-allocated CPU: {core:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn max_vms_is_two() {
        // "the maximum number of VMs is two (m = 2)" (§IV-A).
        let fm = custom_sbc();
        assert_eq!(MultiModel::max_vms(&fm, 8), Some(2));
    }

    #[test]
    fn ablation_without_exclusivity_double_allocation_passes() {
        // Turning the §IV-A constraint off shows it is load-bearing.
        let mut fm = custom_sbc();
        let cpus = fm.by_name("cpus").unwrap();
        fm.set_cross_vm_exclusive(cpus, false);
        let mut mm = MultiModel::new(&fm, 2);
        let vm = names_of(
            &fm,
            &[
                "CustomSBC",
                "memory",
                "cpus",
                "cpu@0",
                "uarts",
                "uart@20000000",
            ],
        );
        assert!(mm.validate(&[vm.clone(), vm]).is_ok());
        // And more than two VMs become possible.
        assert_eq!(MultiModel::max_vms(&fm, 4), Some(4));
    }

    #[test]
    fn automatic_cpu_assignment() {
        // Selecting only veth0 / veth1 forces the CPU assignment.
        let fm = custom_sbc();
        let mut mm = MultiModel::new(&fm, 2);
        let v0 = names_of(&fm, &["veth0"]);
        let v1 = names_of(&fm, &["veth1"]);
        let part = mm.complete(&[v0, v1]).expect("completable");
        let vm1 = mm.product_names(&part.vms[0]);
        let vm2 = mm.product_names(&part.vms[1]);
        assert!(vm1.contains(&"cpu@0".to_string()), "{vm1:?}");
        assert!(vm2.contains(&"cpu@1".to_string()), "{vm2:?}");
    }

    #[test]
    fn conflicting_completion_fails() {
        let fm = custom_sbc();
        let mut mm = MultiModel::new(&fm, 2);
        let v0 = names_of(&fm, &["veth0"]);
        // Both VMs demand veth0 -> both need cpu@0 -> exclusivity fails.
        let err = mm.complete(&[v0.clone(), v0]).unwrap_err();
        assert!(matches!(err, AllocationError::Unsatisfiable(_)));
    }

    #[test]
    fn wrong_vm_count_reported() {
        let fm = custom_sbc();
        let mut mm = MultiModel::new(&fm, 2);
        let err = mm.validate(&[Vec::new()]).unwrap_err();
        assert_eq!(
            err,
            AllocationError::WrongVmCount {
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("expected selections for 2"));
    }

    #[test]
    fn platform_union_definition() {
        // A tiny model: one optional feature; vm1 selects it, vm2 not.
        let mut fm = FeatureModel::new("R");
        let r = fm.root();
        let a = fm.add_optional(r, "a");
        let mut mm = MultiModel::new(&fm, 2);
        let part = mm.validate(&[vec![r, a], vec![r]]).expect("valid");
        assert!(part.platform.contains(&a));
        assert!(part.vms[0].contains(&a));
        assert!(!part.vms[1].contains(&a));
    }

    #[test]
    fn count_allocations_small_model() {
        // One exclusive XOR pair, two VMs: vm1 takes x & vm2 takes y, or
        // the reverse.
        let mut fm = FeatureModel::new("R");
        let r = fm.root();
        let g = fm.add_mandatory(r, "g");
        fm.set_group(g, GroupKind::Xor);
        fm.set_cross_vm_exclusive(g, true);
        fm.add_optional(g, "x");
        fm.add_optional(g, "y");
        let mut mm = MultiModel::new(&fm, 2);
        assert_eq!(mm.count_allocations(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one VM")]
    fn zero_vms_panics() {
        let fm = custom_sbc();
        let _ = MultiModel::new(&fm, 0);
    }
}

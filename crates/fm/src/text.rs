//! A textual format for feature models, so models can live in files
//! next to the DTS sources they constrain.
//!
//! ```text
//! feature CustomSBC {
//!     memory
//!     cpus xor exclusive {
//!         cpu@0?
//!         cpu@1?
//!     }
//!     uarts abstract or {
//!         uart@20000000?
//!         uart@30000000?
//!     }
//!     vEthernet? abstract xor {
//!         veth0?
//!         veth1?
//!     }
//! }
//!
//! constraints {
//!     veth0 requires cpu@0
//!     veth1 requires cpu@1
//! }
//! ```
//!
//! A feature line is
//! `name[?] [abstract] [or|xor|[min..max]] [exclusive] [{ … }]`:
//! the trailing `?` marks the feature optional, `abstract` marks it
//! artifact-free, `or`/`xor` set the group decomposition of its
//! children, and `exclusive` marks the group's children as exclusive
//! resources across VMs (§IV-A). Constraints are `a requires b` or
//! `a excludes b`. `#` starts a line comment.

use std::error::Error;
use std::fmt;

use crate::model::{FeatureId, FeatureModel, GroupKind};

/// Errors from the feature-model text parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "feature model, line {}: {}", self.line, self.message)
    }
}

impl Error for ParseModelError {}

struct Tok {
    line: usize,
    text: String,
}

fn tokenize(src: &str) -> Vec<Tok> {
    let mut out = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("");
        let mut cur = String::new();
        for c in line.chars() {
            match c {
                '{' | '}' => {
                    if !cur.is_empty() {
                        out.push(Tok {
                            line: lineno + 1,
                            text: std::mem::take(&mut cur),
                        });
                    }
                    out.push(Tok {
                        line: lineno + 1,
                        text: c.to_string(),
                    });
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        out.push(Tok {
                            line: lineno + 1,
                            text: std::mem::take(&mut cur),
                        });
                    }
                }
                c => cur.push(c),
            }
        }
        if !cur.is_empty() {
            out.push(Tok {
                line: lineno + 1,
                text: cur,
            });
        }
    }
    out
}

/// Parses the textual feature-model format into a [`FeatureModel`].
///
/// # Errors
///
/// Returns [`ParseModelError`] with a line number on malformed input.
pub fn parse_model(src: &str) -> Result<FeatureModel, ParseModelError> {
    let toks = tokenize(src);
    let mut pos = 0usize;
    let err = |pos: usize, toks: &[Tok], message: String| ParseModelError {
        line: toks
            .get(pos.min(toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0),
        message,
    };

    // 'feature' NAME '{' body '}'
    if toks.get(pos).map(|t| t.text.as_str()) != Some("feature") {
        return Err(err(pos, &toks, "expected 'feature'".into()));
    }
    pos += 1;
    let root_name = toks
        .get(pos)
        .ok_or_else(|| err(pos, &toks, "expected root feature name".into()))?
        .text
        .clone();
    pos += 1;

    let mut fm = FeatureModel::new(&root_name);
    let root = fm.root();
    // The root may carry modifiers too (rarely useful, but uniform).
    pos = parse_modifiers_and_body(&toks, pos, &mut fm, root, true)?;

    // Optional constraints block.
    if toks.get(pos).map(|t| t.text.as_str()) == Some("constraints") {
        pos += 1;
        if toks.get(pos).map(|t| t.text.as_str()) != Some("{") {
            return Err(err(pos, &toks, "expected '{' after 'constraints'".into()));
        }
        pos += 1;
        loop {
            match toks.get(pos).map(|t| t.text.as_str()) {
                Some("}") => {
                    pos += 1;
                    break;
                }
                Some(a) => {
                    let a = a.to_string();
                    let op = toks
                        .get(pos + 1)
                        .ok_or_else(|| err(pos, &toks, "expected 'requires'/'excludes'".into()))?
                        .text
                        .clone();
                    let b = toks
                        .get(pos + 2)
                        .ok_or_else(|| err(pos, &toks, "expected a feature name".into()))?
                        .text
                        .clone();
                    let fa = fm.by_name(&a).ok_or_else(|| {
                        err(pos, &toks, format!("unknown feature {a:?} in constraint"))
                    })?;
                    let fb = fm.by_name(&b).ok_or_else(|| {
                        err(
                            pos + 2,
                            &toks,
                            format!("unknown feature {b:?} in constraint"),
                        )
                    })?;
                    match op.as_str() {
                        "requires" => fm.requires(fa, fb),
                        "excludes" => fm.excludes(fa, fb),
                        other => {
                            return Err(err(
                                pos + 1,
                                &toks,
                                format!("unknown constraint operator {other:?}"),
                            ))
                        }
                    }
                    pos += 3;
                }
                None => return Err(err(pos, &toks, "unterminated constraints block".into())),
            }
        }
    }

    if pos != toks.len() {
        return Err(err(pos, &toks, format!("unexpected {:?}", toks[pos].text)));
    }
    Ok(fm)
}

/// Parses `[abstract] [or|xor] [exclusive] [ '{' feature* '}' ]` for the
/// feature `target`; returns the next token index.
fn parse_modifiers_and_body(
    toks: &[Tok],
    mut pos: usize,
    fm: &mut FeatureModel,
    target: FeatureId,
    _is_root: bool,
) -> Result<usize, ParseModelError> {
    let err = |pos: usize, message: String| ParseModelError {
        line: toks
            .get(pos.min(toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0),
        message,
    };
    loop {
        match toks.get(pos).map(|t| t.text.as_str()) {
            Some("abstract") => {
                fm.set_abstract(target, true);
                pos += 1;
            }
            Some("or") => {
                fm.set_group(target, GroupKind::Or);
                pos += 1;
            }
            Some("xor") => {
                fm.set_group(target, GroupKind::Xor);
                pos += 1;
            }
            Some("exclusive") => {
                fm.set_cross_vm_exclusive(target, true);
                pos += 1;
            }
            Some(tok) if tok.starts_with('[') && tok.ends_with(']') => {
                let inner = &tok[1..tok.len() - 1];
                let (lo, hi) = inner.split_once("..").ok_or_else(|| {
                    err(pos, format!("bad cardinality {tok:?}, expected [min..max]"))
                })?;
                let min: u32 = lo
                    .trim()
                    .parse()
                    .map_err(|_| err(pos, format!("bad cardinality minimum in {tok:?}")))?;
                let max: u32 = hi
                    .trim()
                    .parse()
                    .map_err(|_| err(pos, format!("bad cardinality maximum in {tok:?}")))?;
                fm.set_group(target, GroupKind::Card { min, max });
                pos += 1;
            }
            _ => break,
        }
    }
    if toks.get(pos).map(|t| t.text.as_str()) != Some("{") {
        return Ok(pos); // leaf feature
    }
    pos += 1;
    loop {
        match toks.get(pos).map(|t| t.text.as_str()) {
            Some("}") => return Ok(pos + 1),
            Some(name) => {
                let (name, optional) = match name.strip_suffix('?') {
                    Some(base) => (base.to_string(), true),
                    None => (name.to_string(), false),
                };
                if name.is_empty()
                    || matches!(name.as_str(), "abstract" | "or" | "xor" | "exclusive")
                {
                    return Err(err(pos, format!("bad feature name {:?}", toks[pos].text)));
                }
                if fm.by_name(&name).is_some() {
                    return Err(err(pos, format!("duplicate feature name {name:?}")));
                }
                let child = if optional {
                    fm.add_optional(target, &name)
                } else {
                    fm.add_mandatory(target, &name)
                };
                pos += 1;
                pos = parse_modifiers_and_body(toks, pos, fm, child, false)?;
            }
            None => return Err(err(pos, "unterminated feature body".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;

    const CUSTOM_SBC: &str = r#"
# The paper's Fig. 1a model.
feature CustomSBC {
    memory
    cpus xor exclusive {
        cpu@0?
        cpu@1?
    }
    uarts abstract or {
        uart@20000000?
        uart@30000000?
    }
    vEthernet? abstract xor {
        veth0?
        veth1?
    }
}

constraints {
    veth0 requires cpu@0
    veth1 requires cpu@1
}
"#;

    #[test]
    fn parses_custom_sbc_with_12_products() {
        let fm = parse_model(CUSTOM_SBC).unwrap();
        assert_eq!(fm.len(), 11);
        let mut an = Analyzer::new(&fm);
        assert_eq!(an.count_products(), 12);
    }

    #[test]
    fn text_model_equals_programmatic_model() {
        // The parsed model has the same products as the one built with
        // the builder API in llhsc::running_example.
        let parsed = parse_model(CUSTOM_SBC).unwrap();
        let mut an = Analyzer::new(&parsed);
        let products: Vec<Vec<String>> = an
            .products()
            .iter()
            .map(|p| p.iter().map(|id| parsed.name(*id).to_string()).collect())
            .collect();
        assert_eq!(products.len(), 12);
        // Spot-check a known product.
        assert!(products
            .iter()
            .any(|p| { p.contains(&"cpu@0".to_string()) && p.contains(&"veth0".to_string()) }));
    }

    #[test]
    fn modifiers_apply() {
        let fm = parse_model("feature R { g xor exclusive { a? b? } c? abstract }").unwrap();
        let g = fm.by_name("g").unwrap();
        assert_eq!(fm.feature(g).group, GroupKind::Xor);
        assert!(fm.feature(g).cross_vm_exclusive);
        let c = fm.by_name("c").unwrap();
        assert!(fm.feature(c).optional);
        assert!(fm.feature(c).is_abstract);
    }

    #[test]
    fn cardinality_groups() {
        // Pick between 1 and 2 of the three sensors.
        let fm = parse_model("feature R { sensors [1..2] { s0? s1? s2? } }").unwrap();
        let sensors = fm.by_name("sensors").unwrap();
        assert_eq!(
            fm.feature(sensors).group,
            GroupKind::Card { min: 1, max: 2 }
        );
        let mut an = Analyzer::new(&fm);
        // C(3,1) + C(3,2) = 3 + 3 = 6 products.
        assert_eq!(an.count_products(), 6);
        assert!(fm.to_string().contains("[1..2]"));
    }

    #[test]
    fn bad_cardinality_rejected() {
        let e = parse_model("feature R { g [1..x] { a? } }").unwrap_err();
        assert!(e.message.contains("maximum"));
        let e = parse_model("feature R { g [12] { a? } }").unwrap_err();
        assert!(e.message.contains("[min..max]"));
    }

    #[test]
    fn excludes_constraint() {
        let fm = parse_model("feature R { a? b? } constraints { a excludes b }").unwrap();
        let mut an = Analyzer::new(&fm);
        // Products: {}, {a}, {b} (root implied) = 3.
        assert_eq!(an.count_products(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_model("feature R { a }\nconstraints {\n  a frobs a\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobs"));
    }

    #[test]
    fn unknown_constraint_feature_rejected() {
        let e = parse_model("feature R { a? }\nconstraints { a requires ghost }").unwrap_err();
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn duplicate_feature_rejected() {
        let e = parse_model("feature R { a a }").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unterminated_body_rejected() {
        let e = parse_model("feature R { a").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn missing_feature_keyword_rejected() {
        let e = parse_model("model R { }").unwrap_err();
        assert!(e.message.contains("'feature'"));
    }

    #[test]
    fn comments_and_whitespace() {
        let fm = parse_model("feature R{a?# trailing\n}").unwrap();
        assert!(fm.by_name("a").is_some());
    }
}

//! Feature models with SAT-backed automated analysis and the paper's
//! multi-product resource-allocation semantics.
//!
//! Implements §II-B and §IV-A of the llhsc paper:
//!
//! * FODA-style feature models — a feature tree with AND/OR/XOR group
//!   decompositions, mandatory/optional/abstract features and cross-tree
//!   constraints (`requires`, `excludes`, arbitrary propositional
//!   formulas) — see [`FeatureModel`];
//! * translation to propositional logic over one Boolean variable per
//!   feature ([`encode`](FeatureModel::encode)), following Batory's
//!   classic encoding;
//! * the automated analyses the paper lists: void detection, product
//!   validation, product counting/enumeration, dead and core features —
//!   see [`Analyzer`];
//! * the **multi-product** extension for static partitioning
//!   ([`MultiModel`]): `k` VMs share one feature model, and designated
//!   XOR groups become *exclusive resources* whose sub-features may be
//!   selected by at most one VM (the Boolean formula of §IV-A). This is
//!   what makes "allocating the same CPU to two VMs" unsatisfiable by
//!   construction.
//!
//! # Example
//!
//! ```
//! use llhsc_fm::{FeatureModel, GroupKind, Analyzer};
//!
//! let mut fm = FeatureModel::new("CustomSBC");
//! let root = fm.root();
//! let memory = fm.add_mandatory(root, "memory");
//! let cpus = fm.add_mandatory(root, "cpus");
//! fm.set_group(cpus, GroupKind::Xor);
//! let cpu0 = fm.add_optional(cpus, "cpu@0");
//! let _cpu1 = fm.add_optional(cpus, "cpu@1");
//! let mut an = Analyzer::new(&fm);
//! assert!(!an.is_void());
//! assert!(an.is_valid(&[root, memory, cpus, cpu0]));
//! assert_eq!(an.count_products(), 2); // pick cpu@0 or cpu@1
//! ```

mod analysis;
mod model;
mod multi;
mod text;

pub use analysis::{Analyzer, Product, ProductCount};
pub use model::{CrossConstraint, Feature, FeatureId, FeatureModel, Formula, GroupKind};
pub use multi::{AllocationError, MultiModel, Partitioning};
pub use text::{parse_model, ParseModelError};

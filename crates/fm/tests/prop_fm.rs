//! Property tests: SAT-based product enumeration against brute-force
//! semantics of random feature models.

use std::collections::BTreeSet;

use llhsc_fm::{Analyzer, FeatureId, FeatureModel, GroupKind};
use proptest::prelude::*;

fn arb_group() -> impl Strategy<Value = GroupKind> {
    prop_oneof![
        Just(GroupKind::And),
        Just(GroupKind::Or),
        Just(GroupKind::Xor),
        (0u32..3, 0u32..3).prop_map(|(a, b)| GroupKind::Card {
            min: a.min(b),
            max: a.max(b),
        }),
    ]
}

fn arb_model() -> impl Strategy<Value = (FeatureModel, Vec<FeatureId>)> {
    (
        prop::collection::vec((any::<u16>(), any::<bool>(), arb_group()), 1..8),
        prop::collection::vec((0u16..8, 0u16..8), 0..3), // requires pairs
        prop::collection::vec((0u16..8, 0u16..8), 0..2), // excludes pairs
    )
        .prop_map(|(specs, reqs, excls)| {
            let mut fm = FeatureModel::new("root");
            let mut ids = vec![fm.root()];
            for (i, (praw, optional, group)) in specs.iter().enumerate() {
                let parent = ids[*praw as usize % ids.len()];
                let id = if *optional {
                    fm.add_optional(parent, &format!("f{i}"))
                } else {
                    fm.add_mandatory(parent, &format!("f{i}"))
                };
                fm.set_group(id, *group);
                ids.push(id);
            }
            for (a, b) in reqs {
                let (a, b) = (ids[a as usize % ids.len()], ids[b as usize % ids.len()]);
                if a != b {
                    fm.requires(a, b);
                }
            }
            for (a, b) in excls {
                let (a, b) = (ids[a as usize % ids.len()], ids[b as usize % ids.len()]);
                if a != b && a != fm.root() && b != fm.root() {
                    fm.excludes(a, b);
                }
            }
            (fm, ids)
        })
}

/// Direct (non-SAT) semantics: checks a candidate selection against the
/// feature-model rules.
fn valid_by_rules(fm: &FeatureModel, sel: &BTreeSet<FeatureId>) -> bool {
    if !sel.contains(&fm.root()) {
        return false;
    }
    for id in fm.ids() {
        let f = fm.feature(id);
        if let Some(p) = f.parent {
            if sel.contains(&id) && !sel.contains(&p) {
                return false;
            }
        }
        if f.children.is_empty() {
            continue;
        }
        let chosen = f.children.iter().filter(|c| sel.contains(c)).count();
        match f.group {
            GroupKind::And => {
                if sel.contains(&id) {
                    for c in &f.children {
                        if !fm.feature(*c).optional && !sel.contains(c) {
                            return false;
                        }
                    }
                } else {
                    // children => parent is covered by the loop above;
                    // mandatory-child iff also forbids child-selected-
                    // without-parent (covered) and parent-deselected
                    // means mandatory children deselected (covered too).
                }
            }
            GroupKind::Or => {
                if sel.contains(&id) && chosen == 0 {
                    return false;
                }
            }
            GroupKind::Xor => {
                if sel.contains(&id) && chosen != 1 {
                    return false;
                }
                if !sel.contains(&id) && chosen > 0 {
                    return false;
                }
            }
            GroupKind::Card { min, max } => {
                if sel.contains(&id) && !(min as usize..=max as usize).contains(&chosen) {
                    return false;
                }
            }
        }
        // Mandatory And-children must also drag the parent in via iff.
        if matches!(f.group, GroupKind::And) {
            for c in &f.children {
                if !fm.feature(*c).optional && sel.contains(c) && !sel.contains(&id) {
                    return false;
                }
            }
        }
    }
    for c in fm.constraints() {
        match c {
            llhsc_fm::CrossConstraint::Requires(a, b) => {
                if sel.contains(a) && !sel.contains(b) {
                    return false;
                }
            }
            llhsc_fm::CrossConstraint::Excludes(a, b) => {
                if sel.contains(a) && sel.contains(b) {
                    return false;
                }
            }
            llhsc_fm::CrossConstraint::Rule(_) => {}
        }
    }
    true
}

fn brute_force_products(fm: &FeatureModel) -> BTreeSet<BTreeSet<FeatureId>> {
    let ids: Vec<FeatureId> = fm.ids().collect();
    let n = ids.len();
    assert!(n <= 20, "brute force capped");
    let mut out = BTreeSet::new();
    for mask in 0u32..(1 << n) {
        let sel: BTreeSet<FeatureId> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .map(|(_, id)| *id)
            .collect();
        if valid_by_rules(fm, &sel) {
            out.insert(sel);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SAT enumeration agrees with brute-force rule semantics.
    #[test]
    fn enumeration_matches_rules((fm, _ids) in arb_model()) {
        let expected = brute_force_products(&fm);
        let mut an = Analyzer::new(&fm);
        let got: BTreeSet<BTreeSet<FeatureId>> =
            an.products().into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// `is_valid` agrees with rule semantics on arbitrary selections.
    #[test]
    fn validity_matches_rules((fm, ids) in arb_model(), mask in any::<u32>()) {
        let sel: BTreeSet<FeatureId> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> (i % 32)) & 1 == 1)
            .map(|(_, id)| *id)
            .collect();
        let expected = valid_by_rules(&fm, &sel);
        let mut an = Analyzer::new(&fm);
        let got = an.is_valid(&sel.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(got, expected);
    }

    /// Dead features really never appear; core features always do.
    #[test]
    fn dead_and_core_consistent((fm, _ids) in arb_model()) {
        let products = brute_force_products(&fm);
        let mut an = Analyzer::new(&fm);
        let dead: BTreeSet<FeatureId> = an.dead_features().into_iter().collect();
        let core: BTreeSet<FeatureId> = an.core_features().into_iter().collect();
        for p in &products {
            for d in &dead {
                prop_assert!(!p.contains(d));
            }
            for c in &core {
                prop_assert!(p.contains(c));
            }
        }
        if products.is_empty() {
            // Void model: everything is dead and (vacuously) core.
            prop_assert_eq!(dead.len(), fm.len());
        }
    }
}

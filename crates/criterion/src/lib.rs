//! A self-contained, dependency-free shim that is API-compatible with
//! the subset of [criterion](https://docs.rs/criterion) this workspace
//! uses. The build environment has no registry access, so the real
//! crate cannot be vendored; this shim keeps `cargo bench` runnable
//! offline.
//!
//! It measures mean wall-clock time per iteration (no outlier
//! analysis, no plots, no statistical comparison against a baseline)
//! and prints one line per benchmark:
//!
//! ```text
//! semantic/clean/32       time: 412.7 µs/iter (24 iters)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.default_sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput, reported alongside time.
    pub fn throughput(&mut self, t: Throughput) -> &mut BenchmarkGroup {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { label: name }
    }
}

/// Per-iteration throughput declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(", {}/s", human_bytes(per_second(n, mean))),
        Throughput::Elements(n) => format!(", {:.0} elem/s", per_second(n, mean)),
    });
    println!(
        "{name:<40} time: {}/iter ({} iters{})",
        human_duration(mean),
        b.samples.len(),
        rate.unwrap_or_default()
    );
}

fn per_second(n: u64, mean: Duration) -> f64 {
    n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
}

fn human_bytes(bps: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bps;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

fn human_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner, mirroring criterion's plain form:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

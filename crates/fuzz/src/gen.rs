//! Grammar-directed input generators.
//!
//! Pure byte mutation rarely gets past a parser's first error; these
//! generators build structurally plausible documents (balanced braces,
//! valid-ish tokens) so the deeper layers — value decoding, tree
//! merging, cell interpretation — see traffic too. They are allowed to
//! emit invalid documents; the drivers only require totality, not
//! acceptance.

use crate::rng::Rng;

fn ident(rng: &mut Rng, out: &mut String) {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_,.#";
    out.push(*rng.pick(FIRST) as char);
    for _ in 0..rng.below(8) {
        out.push(*rng.pick(REST) as char);
    }
}

fn dts_value(rng: &mut Rng, out: &mut String) {
    match rng.below(5) {
        0 => {
            out.push('<');
            for _ in 0..rng.below(6) {
                match rng.below(4) {
                    0 => out.push_str(&format!("0x{:x} ", rng.u32())),
                    1 => out.push_str(&format!("{} ", rng.below(4096))),
                    2 => out.push_str("&lbl "),
                    _ => out.push_str(&format!("0x{:x} ", rng.next_u64())),
                }
            }
            out.push('>');
        }
        1 => {
            out.push('"');
            for _ in 0..rng.below(10) {
                let c = rng.byte();
                match c {
                    b'"' | b'\\' => out.push('_'),
                    0x20..=0x7e => out.push(c as char),
                    _ => out.push('µ'),
                }
            }
            out.push('"');
        }
        2 => {
            out.push('[');
            for _ in 0..rng.below(5) {
                // Odd-length and zero-leading runs on purpose.
                let width = 1 + rng.below(4);
                out.push(' ');
                for _ in 0..width {
                    out.push(*rng.pick(b"0123456789abcdefABCDEF") as char);
                }
            }
            out.push_str(" ]");
        }
        3 => out.push_str("&lbl"),
        _ => {
            dts_value(rng, out);
            out.push_str(", ");
            out.push('"');
            out.push('x');
            out.push('"');
        }
    }
}

fn dts_node(rng: &mut Rng, depth: usize, out: &mut String) {
    ident(rng, out);
    if rng.chance(1, 3) {
        out.push_str(&format!("@{:x}", rng.u32()));
    }
    out.push_str(" {\n");
    for _ in 0..rng.below(4) {
        match rng.below(6) {
            0 if depth < 6 => dts_node(rng, depth + 1, out),
            1 => {
                out.push_str("#address-cells = <");
                out.push_str(&format!("{}", rng.below(7)));
                out.push_str(">;\n");
            }
            2 => {
                ident(rng, out);
                out.push_str(";\n");
            }
            _ => {
                ident(rng, out);
                out.push_str(" = ");
                dts_value(rng, out);
                out.push_str(";\n");
            }
        }
    }
    out.push_str("};\n");
}

/// A structurally plausible (not necessarily valid) DTS document.
pub fn dts(rng: &mut Rng) -> String {
    let mut out = String::new();
    if rng.chance(2, 3) {
        out.push_str("/dts-v1/;\n");
    }
    out.push_str("/ {\n");
    if rng.chance(1, 2) {
        out.push_str("lbl: marker { };\n");
    }
    for _ in 0..rng.below(4) {
        dts_node(rng, 0, &mut out);
    }
    out.push_str("};\n");
    if rng.chance(1, 4) {
        out.push_str("&lbl { extended; };\n");
    }
    out
}

fn json_value(rng: &mut Rng, depth: usize, out: &mut String) {
    match rng.below(if depth < 8 { 7 } else { 5 }) {
        0 => out.push_str("null"),
        1 => out.push_str(if rng.chance(1, 2) { "true" } else { "false" }),
        2 => out.push_str(&format!("{}", rng.next_u64() as i64)),
        3 => out.push_str(&format!("{}.{}e{}", rng.below(100), rng.below(100), {
            rng.below(20) as i64 - 10
        })),
        4 => {
            out.push('"');
            for _ in 0..rng.below(8) {
                match rng.below(5) {
                    0 => out.push_str("\\n"),
                    1 => out.push_str(&format!("\\u{:04x}", rng.below(0xd7ff))),
                    2 => out.push('µ'),
                    _ => out.push(*rng.pick(b"abc 09_-") as char),
                }
            }
            out.push('"');
        }
        5 => {
            out.push('[');
            for i in 0..rng.below(4) {
                if i > 0 {
                    out.push(',');
                }
                json_value(rng, depth + 1, out);
            }
            out.push(']');
        }
        _ => {
            out.push('{');
            for i in 0..rng.below(4) {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                ident(rng, out);
                out.push_str("\":");
                json_value(rng, depth + 1, out);
            }
            out.push('}');
        }
    }
}

/// A structurally plausible JSON document; occasionally one nested past
/// the parser's depth limit, which must come back as an error, not a
/// stack overflow.
pub fn json(rng: &mut Rng) -> String {
    let mut out = String::new();
    if rng.chance(1, 16) {
        let depth = 60 + rng.below(40);
        out.push_str(&"[".repeat(depth));
        out.push('1');
        out.push_str(&"]".repeat(depth));
    } else {
        json_value(rng, 0, &mut out);
    }
    out
}

/// A plausible DIMACS document: usually headed, sometimes lying about
/// counts, sometimes missing the header or the clause terminator.
pub fn dimacs(rng: &mut Rng) -> String {
    let mut out = String::new();
    let vars = 1 + rng.below(12) as i64;
    if rng.chance(7, 8) {
        out.push_str(&format!("p cnf {} {}\n", vars, rng.below(20)));
    }
    for _ in 0..rng.below(8) {
        if rng.chance(1, 8) {
            out.push_str("c noise\n");
        }
        for _ in 0..rng.below(5) {
            let mut v = 1 + rng.below(vars as usize + 2) as i64;
            if rng.chance(1, 2) {
                v = -v;
            }
            if rng.chance(1, 32) {
                v = v.wrapping_mul(1 << rng.below(40));
            }
            out.push_str(&format!("{v} "));
        }
        if rng.chance(7, 8) {
            out.push('0');
        }
        out.push('\n');
    }
    out
}

//! Byte-level mutation operators, applied on top of corpus seeds and
//! generated documents.

use crate::rng::Rng;

/// Format-specific tokens spliced into inputs so mutations stay near
/// the interesting parts of each grammar.
pub const DTS_DICT: &[&str] = &[
    "/dts-v1/;",
    "/include/",
    "/delete-node/",
    "/delete-property/",
    "#address-cells",
    "= <",
    ">;",
    "[ 00 ]",
    "[ 0011 ]",
    "\"",
    "&",
    "{",
    "};",
    "@",
    ":",
    "0xffffffff",
    ";",
];

/// JSON structural tokens and escape fragments.
pub const JSON_DICT: &[&str] = &[
    "{", "}", "[", "]", ":", ",", "\"", "\\u", "\\ud800", "null", "true", "1e309", "-", "0.",
    "\u{fffd}",
];

/// DIMACS tokens, including the header and overflow-sized literals.
pub const DIMACS_DICT: &[&str] = &[
    "p cnf",
    "p",
    "cnf",
    "c",
    "%",
    "0",
    "-",
    "4294967297",
    "9223372036854775807",
    "1 2 0",
];

/// Applies `rounds` random mutations to `data` in place.
pub fn mutate(rng: &mut Rng, data: &mut Vec<u8>, dict: &[&str], rounds: usize) {
    for _ in 0..rounds {
        match rng.below(7) {
            // Flip one bit.
            0 if !data.is_empty() => {
                let i = rng.below(data.len());
                data[i] ^= 1 << rng.below(8);
            }
            // Overwrite one byte.
            1 if !data.is_empty() => {
                let i = rng.below(data.len());
                data[i] = rng.byte();
            }
            // Truncate.
            2 if !data.is_empty() => {
                let at = rng.below(data.len());
                data.truncate(at);
            }
            // Delete a span.
            3 if data.len() > 1 => {
                let start = rng.below(data.len());
                let end = start + 1 + rng.below((data.len() - start).min(16));
                data.drain(start..end.min(data.len()));
            }
            // Duplicate a span (splice).
            4 if !data.is_empty() => {
                let start = rng.below(data.len());
                let end = start + 1 + rng.below((data.len() - start).min(16));
                let span: Vec<u8> = data[start..end.min(data.len())].to_vec();
                let at = rng.below(data.len() + 1);
                data.splice(at..at, span);
            }
            // Insert a dictionary token.
            5 => {
                let tok = rng.pick(dict).as_bytes().to_vec();
                let at = rng.below(data.len() + 1);
                data.splice(at..at, tok);
            }
            // Insert raw bytes (may break UTF-8; drivers go through
            // from_utf8_lossy where the API takes &str).
            _ => {
                let at = rng.below(data.len() + 1);
                let extra: Vec<u8> = (0..1 + rng.below(4)).map(|_| rng.byte()).collect();
                data.splice(at..at, extra);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic() {
        let run = || {
            let mut rng = Rng::for_iteration(3, 9);
            let mut data = b"p cnf 2 1\n1 2 0\n".to_vec();
            mutate(&mut rng, &mut data, DIMACS_DICT, 8);
            data
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_input_survives_every_operator() {
        let mut rng = Rng::for_iteration(0, 0);
        let mut data = Vec::new();
        mutate(&mut rng, &mut data, JSON_DICT, 64);
    }
}

//! Embedded seed corpus: one small, well-formed document per input
//! format. Mutations start from these (or from freshly generated
//! documents) so the fuzzer spends its budget past the first token
//! instead of rediscovering the grammar from noise.

/// Well-formed DTS sources covering the constructs the parser knows:
/// unit addresses, labels, references, cell arrays, strings, byte
/// strings, deletes.
pub const DTS_SEEDS: &[&str] = &[
    "/dts-v1/;\n/ {\n};\n",
    "/dts-v1/;\n/ {\n    #address-cells = <2>;\n    #size-cells = <2>;\n    \
     memory@40000000 {\n        device_type = \"memory\";\n        \
     reg = <0x0 0x40000000 0x0 0x20000000>;\n    };\n};\n",
    "/ {\n    uart0: uart@9000000 {\n        compatible = \"arm,pl011\", \"arm,primecell\";\n        \
     reg = <0x0 0x9000000 0x0 0x1000>;\n        interrupts = <0 1 4>;\n    };\n    \
     aliases {\n        serial0 = &uart0;\n    };\n};\n",
    "/ {\n    chip {\n        e: eeprom@50 {\n        mac = [ 00 11 22 33 44 55 ];\n        \
     local-mac-address = [ 0011 2233 4455 ];\n        };\n    };\n};\n&e { status = \"okay\"; };\n",
    "/ {\n    cpus {\n        #address-cells = <1>;\n        #size-cells = <0>;\n        \
     cpu@0 { device_type = \"cpu\"; reg = <0>; };\n        \
     cpu@1 { device_type = \"cpu\"; reg = <1>; };\n    };\n};\n",
];

/// Well-formed JSON documents shaped like the service protocol.
pub const JSON_SEEDS: &[&str] = &[
    "{\"op\":\"ping\"}",
    "{\"op\":\"check\",\"dts\":\"/ { };\\n\"}",
    "{\"ok\":true,\"clean\":false,\"input_error\":false,\"stdout\":\"checked: 3 regions\\n\",\
     \"stderr\":\"\",\"cached\":true}",
    "{\"op\":\"build\",\"core\":\"/ { };\",\"deltas\":\"\",\"model\":\"feature A { }\",\
     \"vms\":[{\"name\":\"vm1\",\"features\":[\"a\",\"b\"]}],\"schemas\":[]}",
    "[null,true,false,0,-1,42,\"\\u00b5\",[],{},{\"k\":[1,2,3]}]",
];

/// Well-formed DIMACS CNF documents.
pub const DIMACS_SEEDS: &[&str] = &[
    "p cnf 3 2\n1 -2 0\n3 0\n",
    "c comment\n\np cnf 4 3\n1 2\n-3 0\n4 0\n-1 -4 0\n",
    "p cnf 1 0\n",
    "% percent comment\np cnf 2 2\n1 2 0\n-1 -2 0\n",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dts_seeds_parse() {
        for s in DTS_SEEDS {
            llhsc_dts::parse(s).unwrap_or_else(|e| panic!("seed {s:?}: {e}"));
        }
    }

    #[test]
    fn json_seeds_parse() {
        for s in JSON_SEEDS {
            llhsc_service::Json::parse(s).unwrap_or_else(|e| panic!("seed {s:?}: {e}"));
        }
    }

    #[test]
    fn dimacs_seeds_parse() {
        for s in DIMACS_SEEDS {
            llhsc_sat::parse_dimacs(s.as_bytes()).unwrap_or_else(|e| panic!("seed {s:?}: {e}"));
        }
    }
}

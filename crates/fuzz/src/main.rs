//! The `llhsc-fuzz` command line.
//!
//! ```text
//! llhsc-fuzz --iters 20000 --seed 1 [--driver dts|cells|json|dimacs|all] [--start K]
//! ```
//!
//! Exit codes follow the workspace convention: 0 for a clean run, 1
//! when a failure was found, 2 for usage errors.

use std::process::ExitCode;

use llhsc_fuzz::{run, Driver, Options, ALL_DRIVERS};

const USAGE: &str =
    "usage: llhsc-fuzz [--iters N] [--seed S] [--start K] [--driver dts|cells|json|dimacs|all]

Deterministic fuzz harness for llhsc's untrusted-input surfaces.
A reported failure replays with the --seed/--start pair it prints.";

fn fail_usage(message: &str) -> ExitCode {
    eprintln!("llhsc-fuzz: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut opts = Options {
        iters: 20_000,
        seed: 1,
        start: 0,
        driver: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--iters" => match value("--iters").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => opts.iters = n,
                _ => return fail_usage("--iters needs an unsigned integer"),
            },
            "--seed" => match value("--seed").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => opts.seed = n,
                _ => return fail_usage("--seed needs an unsigned integer"),
            },
            "--start" => match value("--start").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => opts.start = n,
                _ => return fail_usage("--start needs an unsigned integer"),
            },
            "--driver" => match value("--driver").as_deref() {
                Ok("all") => opts.driver = None,
                Ok(name) => match Driver::from_name(name) {
                    Some(d) => opts.driver = Some(d),
                    None => return fail_usage(&format!("unknown driver {name:?}")),
                },
                Err(e) => return fail_usage(e.as_str()),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail_usage(&format!("unknown argument {other:?}")),
        }
    }

    match run(&opts) {
        Ok(summary) => {
            let total: u64 = summary.per_driver.iter().sum();
            let breakdown: Vec<String> = ALL_DRIVERS
                .iter()
                .zip(summary.per_driver.iter())
                .filter(|(_, n)| **n > 0)
                .map(|(d, n)| format!("{} {n}", d.name()))
                .collect();
            println!(
                "llhsc-fuzz: {total} iterations clean (seed {}, {})",
                opts.seed,
                breakdown.join(", ")
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("{failure}");
            ExitCode::from(1)
        }
    }
}

//! Invariant drivers, one per untrusted-input surface.
//!
//! Each driver takes arbitrary bytes and either returns `Ok(())` or an
//! invariant-violation description. Panics are caught by the runner;
//! the contract for every surface is *totality*: malformed input must
//! come back as a structured `Err`, well-formed input must satisfy the
//! surface's round-trip law.

use llhsc_dts::cells::{decode_reg, MAX_CELLS};
use llhsc_dts::{Cell, Node, NodePath, PropValue, Property};
use llhsc_sat::{
    check_drat, CheckMode, Cnf, DimacsError, Lit, SolveResult, Solver, SolverConfig, Var,
};
use llhsc_service::Json;

/// DTS text: parse is total; on success, print → parse is a fixpoint
/// (the printer emits text the parser maps back to the same rendering).
/// The same bytes are also fed to the FDT blob decoder, which must be
/// total as well.
pub fn dts(input: &[u8]) -> Result<(), String> {
    let _ = llhsc_dts::fdt::decode(input);
    let _ = llhsc_dts::fdt::decode_typed(input);

    let text = String::from_utf8_lossy(input);
    let Ok(tree) = llhsc_dts::parse(&text) else {
        return Ok(());
    };
    let printed = llhsc_dts::print(&tree);
    let reparsed = llhsc_dts::parse(&printed)
        .map_err(|e| format!("printed output does not reparse: {e}\n--- printed ---\n{printed}"))?;
    let printed_again = llhsc_dts::print(&reparsed);
    if printed_again != printed {
        return Err(format!(
            "print is not a fixpoint after one round trip\n--- first ---\n{printed}\n--- second ---\n{printed_again}"
        ));
    }
    Ok(())
}

/// Packs big-endian cells into a `u128` the obvious way — an
/// independent reference for `decode_reg`'s windowed accumulation.
fn be_reference(cells: &[u32]) -> u128 {
    let mut bytes = [0u8; 16];
    for (i, c) in cells.iter().rev().enumerate() {
        let off = 16 - 4 * (i + 1);
        bytes[off..off + 4].copy_from_slice(&c.to_be_bytes());
    }
    u128::from_be_bytes(bytes)
}

/// `reg` decoding: cell counts and cell payloads are attacker-chosen.
/// Decode must be total, must reject counts outside `0..=MAX_CELLS`,
/// and on success every decoded `(address, size)` must equal an
/// independent big-endian interpretation of the same cells (no silently
/// dropped high bits — the paper's truncation-bug class).
pub fn cells(input: &[u8]) -> Result<(), String> {
    let mut it = input.iter().copied();
    let address_cells = u32::from(it.next().unwrap_or(2)) % 6;
    let size_cells = u32::from(it.next().unwrap_or(1)) % 6;
    let payload: Vec<u8> = it.collect();
    let cells: Vec<u32> = payload
        .chunks(4)
        .map(|c| {
            let mut w = [0u8; 4];
            w[..c.len()].copy_from_slice(c);
            u32::from_be_bytes(w)
        })
        .collect();

    let mut node = Node::new("dev");
    node.set_prop(Property {
        name: "reg".into(),
        values: vec![PropValue::Cells(
            cells.iter().map(|&c| Cell::U32(c)).collect(),
        )],
    });
    let path = NodePath::root();

    let entries = match decode_reg(&path, &node, address_cells, size_cells) {
        Ok(entries) => entries,
        Err(_) => return Ok(()),
    };
    if address_cells > MAX_CELLS || size_cells > MAX_CELLS {
        return Err(format!(
            "decode_reg accepted cell counts ({address_cells}, {size_cells}) beyond MAX_CELLS"
        ));
    }
    let stride = (address_cells + size_cells) as usize;
    for (i, entry) in entries.iter().enumerate() {
        let chunk = &cells[i * stride..(i + 1) * stride];
        let want_addr = be_reference(&chunk[..address_cells as usize]);
        let want_size = be_reference(&chunk[address_cells as usize..]);
        if entry.address != want_addr || entry.size != want_size {
            return Err(format!(
                "entry {i}: decoded ({:#x}, {:#x}), reference ({want_addr:#x}, {want_size:#x})",
                entry.address, entry.size
            ));
        }
        // end() must never wrap silently.
        if entry.end() < entry.address {
            return Err(format!("entry {i}: end() wrapped below address"));
        }
    }
    Ok(())
}

/// Service JSON: parse is total and depth-limited; on success,
/// parse → print → parse yields an equal value and printing is a
/// fixpoint (sorted keys make rendering canonical).
pub fn json(input: &[u8]) -> Result<(), String> {
    let text = String::from_utf8_lossy(input);
    let Ok(value) = Json::parse(&text) else {
        return Ok(());
    };
    let printed = value.to_string();
    let reparsed = Json::parse(&printed)
        .map_err(|e| format!("printed JSON does not reparse: {e}\n--- printed ---\n{printed}"))?;
    if reparsed != value {
        return Err(format!(
            "JSON round trip changed the value\n--- printed ---\n{printed}"
        ));
    }
    if reparsed.to_string() != printed {
        return Err("JSON printing is not a fixpoint".into());
    }
    Ok(())
}

/// DIMACS: parse is total, every parse-level error names its line, and
/// accepted formulas survive write → parse unchanged.
pub fn dimacs(input: &[u8]) -> Result<(), String> {
    match llhsc_sat::parse_dimacs(input) {
        Ok(cnf) => {
            let mut buf = Vec::new();
            llhsc_sat::write_dimacs(&cnf, &mut buf)
                .map_err(|e| format!("write_dimacs failed on accepted input: {e}"))?;
            let back = llhsc_sat::parse_dimacs(buf.as_slice())
                .map_err(|e| format!("own DIMACS output does not reparse: {e}"))?;
            if back != cnf {
                return Err("DIMACS round trip changed the formula".into());
            }
            Ok(())
        }
        Err(DimacsError::Io(_)) => Ok(()),
        Err(e) => {
            let rendered = e.to_string();
            if rendered.starts_with("line ") {
                Ok(())
            } else {
                Err(format!("parse error carries no line number: {rendered}"))
            }
        }
    }
}

/// Differential testing of the CDCL solver itself: the input bytes
/// encode a small random CNF (≤ 10 variables, short clauses, so an
/// exhaustive truth-table check stays cheap), solved under an
/// *aggressive* configuration — tiny restart interval, eager clause-db
/// reduction, hair-trigger chronological backtracking — so the
/// in-processing passes (vivification, subsumption, stabilizing
/// restarts) actually fire on toy instances. The verdict is checked
/// against brute-force enumeration, a `Sat` model is evaluated against
/// every clause, and an `Unsat` verdict's DRAT proof is replayed
/// through [`check_drat`]: a refutation the in-tree checker rejects is
/// an invariant violation, not just a wrong answer.
pub fn sat(input: &[u8]) -> Result<(), String> {
    let mut it = input.iter().copied();
    let num_vars = 1 + usize::from(it.next().unwrap_or(3)) % 10;
    let num_clauses = 1 + usize::from(it.next().unwrap_or(7)) % 24;
    let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let len = 1 + usize::from(it.next().unwrap_or(0)) % 3;
        let mut clause = Vec::with_capacity(len);
        for _ in 0..len {
            let v = usize::from(it.next().unwrap_or(0)) % num_vars;
            let positive = it.next().unwrap_or(0) & 1 != 0;
            clause.push(Lit::new(Var::from_index(v), positive));
        }
        clauses.push(clause);
    }

    // Exhaustive reference verdict over all 2^num_vars assignments.
    let satisfied = |clause: &[Lit], bits: u32| {
        clause
            .iter()
            .any(|l| (bits >> l.var().index()) & 1 == u32::from(l.is_positive()))
    };
    let reference_sat =
        (0u32..1 << num_vars).any(|bits| clauses.iter().all(|c| satisfied(c, bits)));

    let mut solver = Solver::with_config(SolverConfig {
        restart_base: 1,
        learnt_size_factor: 0.05,
        chrono_threshold: 2,
        ..SolverConfig::default()
    });
    solver.enable_proof();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in &clauses {
        solver.add_clause(clause.iter().copied());
    }
    match solver.solve() {
        SolveResult::Sat => {
            if !reference_sat {
                return Err("solver answered Sat on an unsatisfiable formula".into());
            }
            let bits = (0..num_vars).fold(0u32, |acc, i| {
                acc | u32::from(solver.value(Var::from_index(i)) == Some(true)) << i
            });
            if let Some(i) = clauses.iter().position(|c| !satisfied(c, bits)) {
                return Err(format!(
                    "model does not satisfy clause {i}: {:?}",
                    clauses[i]
                ));
            }
        }
        SolveResult::Unsat => {
            if reference_sat {
                return Err("solver answered Unsat on a satisfiable formula".into());
            }
            let mut cnf = Cnf::new();
            cnf.reserve_vars(num_vars);
            for clause in &clauses {
                cnf.add_clause(clause.iter().copied());
            }
            let proof = solver.proof().expect("proof logging was enabled");
            check_drat(&cnf, proof, CheckMode::Last)
                .map_err(|e| format!("UNSAT verdict's DRAT proof fails to check: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drivers_accept_the_corpus() {
        for s in crate::corpus::DTS_SEEDS {
            dts(s.as_bytes()).unwrap();
        }
        for s in crate::corpus::JSON_SEEDS {
            json(s.as_bytes()).unwrap();
        }
        for s in crate::corpus::DIMACS_SEEDS {
            dimacs(s.as_bytes()).unwrap();
        }
    }

    #[test]
    fn cells_driver_cross_checks_decoding() {
        // 2 address cells, 2 size cells, one entry with high bits set in
        // every cell — the exact shape 64→32-bit truncation would eat.
        let mut input = vec![2, 2];
        for c in [0xdead_beefu32, 0x1234_5678, 0x0000_0001, 0x8000_0000] {
            input.extend_from_slice(&c.to_be_bytes());
        }
        cells(&input).unwrap();
    }

    #[test]
    fn cells_driver_handles_tiny_inputs() {
        cells(&[]).unwrap();
        cells(&[5]).unwrap();
        cells(&[5, 5, 1, 2, 3]).unwrap();
    }

    #[test]
    fn dimacs_driver_checks_line_numbers() {
        dimacs(b"p dnf\n").unwrap();
        dimacs(b"1 2 0\n").unwrap();
        dimacs(b"p cnf 1 1\n99 0\n").unwrap();
    }
}

//! `llhsc-fuzz` — a deterministic, dependency-free fuzz harness for the
//! workspace's untrusted-input surfaces.
//!
//! Real deployments of llhsc read files the tool does not control: DTS
//! sources, FDT blobs, protocol JSON, DIMACS formulas. The contract for
//! every one of those surfaces is *totality* — arbitrary bytes produce
//! `Ok` or a structured error, never a panic, and accepted documents
//! satisfy their format's round-trip law. This crate checks that
//! contract the only way it can be checked: by throwing generated and
//! mutated inputs at the real entry points.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** An iteration is fully determined by
//!    `(seed, iteration)`; any failure replays standalone with
//!    `--seed S --start K --iters 1`. No time, no global RNG state.
//! 2. **Dependency-free.** No `cargo-fuzz`, no libFuzzer, no registry
//!    access — the harness is plain Rust in the workspace and runs as a
//!    bounded smoke test in CI (`ci.sh`).
//! 3. **In-process.** Drivers run under [`std::panic::catch_unwind`],
//!    so a 20 000-iteration run costs milliseconds, not process spawns.
//!    The flip side: a stack overflow is *not* catchable, which is why
//!    the parsers carry explicit depth limits and the generators
//!    deliberately emit deeply nested documents to prove them.
//!
//! See `docs/FUZZING.md` for the audit this harness enforces.

pub mod corpus;
pub mod drivers;
pub mod gen;
pub mod mutate;
pub mod rng;

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

use rng::Rng;

/// The fuzzable surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// DTS parser/printer + FDT decoder.
    Dts,
    /// `reg` decoding under `#address-cells`/`#size-cells`.
    Cells,
    /// Service-protocol JSON.
    Json,
    /// DIMACS CNF reader/writer.
    Dimacs,
    /// The CDCL solver itself: differential verdicts against
    /// brute-force enumeration, with every UNSAT proof replayed
    /// through the in-tree DRAT checker.
    Sat,
}

/// All drivers, in the order `--driver all` cycles through them.
pub const ALL_DRIVERS: [Driver; 5] = [
    Driver::Dts,
    Driver::Cells,
    Driver::Json,
    Driver::Dimacs,
    Driver::Sat,
];

impl Driver {
    /// The `--driver` flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            Driver::Dts => "dts",
            Driver::Cells => "cells",
            Driver::Json => "json",
            Driver::Dimacs => "dimacs",
            Driver::Sat => "sat",
        }
    }

    /// Parses a `--driver` flag value; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Driver> {
        ALL_DRIVERS.iter().copied().find(|d| d.name() == name)
    }

    fn run(self, input: &[u8]) -> Result<(), String> {
        match self {
            Driver::Dts => drivers::dts(input),
            Driver::Cells => drivers::cells(input),
            Driver::Json => drivers::json(input),
            Driver::Dimacs => drivers::dimacs(input),
            Driver::Sat => drivers::sat(input),
        }
    }

    /// Builds the iteration's input: a corpus seed or generated
    /// document, then a few byte-level mutation rounds on top.
    fn input_for(self, rng: &mut Rng) -> Vec<u8> {
        let (seeds, dict): (&[&str], &[&str]) = match self {
            Driver::Dts => (corpus::DTS_SEEDS, mutate::DTS_DICT),
            Driver::Json => (corpus::JSON_SEEDS, mutate::JSON_DICT),
            Driver::Dimacs => (corpus::DIMACS_SEEDS, mutate::DIMACS_DICT),
            // The cells and sat drivers decode their input bytes
            // themselves; grammar seeds would just be noise to them.
            Driver::Cells | Driver::Sat => (&[], &[]),
        };
        let raw = matches!(self, Driver::Cells | Driver::Sat);
        let mut data = if self == Driver::Cells {
            (0..rng.below(40)).map(|_| rng.byte()).collect()
        } else if self == Driver::Sat {
            // 2 header bytes + up to 24 clauses × 3 literals × 2 bytes.
            (0..2 + rng.below(146)).map(|_| rng.byte()).collect()
        } else if seeds.is_empty() || rng.chance(1, 2) {
            match self {
                Driver::Dts => gen::dts(rng).into_bytes(),
                Driver::Json => gen::json(rng).into_bytes(),
                Driver::Dimacs => gen::dimacs(rng).into_bytes(),
                Driver::Cells | Driver::Sat => Vec::new(),
            }
        } else {
            rng.pick(seeds).as_bytes().to_vec()
        };
        if !raw {
            let rounds = rng.below(6);
            mutate::mutate(rng, &mut data, dict, rounds);
        }
        data
    }
}

/// One run's configuration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Iterations to execute.
    pub iters: u64,
    /// Base seed; combined with the iteration index per input.
    pub seed: u64,
    /// First iteration index (for replaying a reported failure).
    pub start: u64,
    /// `Some(d)` to fuzz one surface, `None` for all in rotation.
    pub driver: Option<Driver>,
}

/// A reproducible failure: a panic or an invariant violation.
#[derive(Debug)]
pub struct Failure {
    /// Which surface failed.
    pub driver: Driver,
    /// The iteration index (replay with `--start <iteration>`).
    pub iteration: u64,
    /// The base seed.
    pub seed: u64,
    /// Panic message or invariant-violation description.
    pub message: String,
    /// The offending input.
    pub input: Vec<u8>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "driver {} failed at iteration {} (seed {}):",
            self.driver.name(),
            self.iteration,
            self.seed
        )?;
        writeln!(f, "  {}", self.message)?;
        writeln!(
            f,
            "  input ({} bytes): {}",
            self.input.len(),
            escape(&self.input)
        )?;
        write!(
            f,
            "  replay: llhsc-fuzz --driver {} --seed {} --start {} --iters 1",
            self.driver.name(),
            self.seed,
            self.iteration
        )
    }
}

/// Renders input bytes as a copy-pasteable escaped string.
fn escape(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() + 2);
    out.push('"');
    for &b in bytes {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            0x20..=0x7e => out.push(b as char),
            other => out.push_str(&format!("\\x{other:02x}")),
        }
    }
    out.push('"');
    out
}

/// Iteration counts per driver after a clean run.
#[derive(Debug, Default)]
pub struct Summary {
    /// `(driver, iterations executed)` in [`ALL_DRIVERS`] order.
    pub per_driver: [u64; 5],
}

/// The panic message captured by the harness's hook, if any.
static LAST_PANIC: Mutex<Option<String>> = Mutex::new(None);

fn capture_panics() {
    panic::set_hook(Box::new(|info| {
        let message = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        let location = info
            .location()
            .map(|l| format!(" at {}:{}", l.file(), l.line()))
            .unwrap_or_default();
        *LAST_PANIC.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(format!("panic{location}: {message}"));
    }));
}

fn take_panic_message() -> String {
    LAST_PANIC
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .unwrap_or_else(|| "panic (no message captured)".into())
}

/// Runs the harness. Returns the per-driver iteration counts, or the
/// first failure.
///
/// # Errors
///
/// The first panic or invariant violation, with the input and a replay
/// command line.
pub fn run(opts: &Options) -> Result<Summary, Box<Failure>> {
    capture_panics();
    let result = run_inner(opts);
    let _ = panic::take_hook();
    result
}

fn run_inner(opts: &Options) -> Result<Summary, Box<Failure>> {
    let mut summary = Summary::default();
    for iteration in opts.start..opts.start.saturating_add(opts.iters) {
        let driver = match opts.driver {
            Some(d) => d,
            None => ALL_DRIVERS[(iteration % 5) as usize],
        };
        let mut rng = Rng::for_iteration(opts.seed, iteration);
        let input = driver.input_for(&mut rng);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| driver.run(&input)))
            .unwrap_or_else(|_| Err(take_panic_message()));
        if let Err(message) = outcome {
            return Err(Box::new(Failure {
                driver,
                iteration,
                seed: opts.seed,
                message,
                input,
            }));
        }
        let slot = ALL_DRIVERS.iter().position(|d| *d == driver).unwrap_or(0);
        summary.per_driver[slot] += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The panic hook is process-global; tests that install or remove
    /// it must not interleave.
    static HOOK_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn panics_are_captured_with_location() {
        let _guard = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        capture_panics();
        let caught = panic::catch_unwind(|| panic!("boom {}", 7));
        let _ = panic::take_hook();
        assert!(caught.is_err());
        let message = take_panic_message();
        assert!(message.contains("boom 7"), "{message}");
        assert!(message.contains("lib.rs"), "{message}");
    }

    #[test]
    fn smoke_run_is_clean() {
        let _guard = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let summary = run(&Options {
            iters: 400,
            seed: 1,
            start: 0,
            driver: None,
        })
        .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(summary.per_driver.iter().sum::<u64>(), 400);
        assert!(summary.per_driver.iter().all(|&n| n == 80));
    }

    #[test]
    fn failures_are_reproducible() {
        // A driver that always panics would report the same input for
        // the same (seed, start); emulate by checking input derivation.
        let a = Driver::Dts.input_for(&mut Rng::for_iteration(9, 123));
        let b = Driver::Dts.input_for(&mut Rng::for_iteration(9, 123));
        assert_eq!(a, b);
    }

    #[test]
    fn driver_names_round_trip() {
        for d in ALL_DRIVERS {
            assert_eq!(Driver::from_name(d.name()), Some(d));
        }
        assert_eq!(Driver::from_name("nope"), None);
    }
}

//! The harness PRNG — re-exported from `llhsc-count`, where the
//! workspace's one deterministic generator (xorshift64* seeded through
//! splitmix64) now lives so the counting and sampling algorithms share
//! it. The contract is unchanged: a generator is fully determined by
//! its `(seed, iteration)` pair, so any fuzz iteration can be replayed
//! standalone with `--start`.

pub use llhsc_count::rng::Rng;

//! Umbrella package for the `llhsc` reproduction workspace.
//!
//! This package exists to host the workspace-level integration tests in
//! `/tests` and the runnable examples in `/examples`. All functionality
//! lives in the member crates; see the workspace `README.md`.
